"""Coordinator: drives a plan on real worker processes.

Implements the paper's Fig. 6 workflow over the shared runtime core.
The plan is compiled once into a :class:`~repro.runtime.program.PlanProgram`
and a process-backed transport carries each stage's tiles to its worker
processes:

* :class:`TcpTransport` — framed sockets end to end; tensors are
  encoded into the stream (no-recopy sends, ``recv_into`` receives).
* :class:`ShmTransport` — the same control sockets, but tensor
  payloads live in shared-memory slot rings
  (:mod:`repro.runtime.shm`): one memcpy on send, a zero-copy
  ``np.ndarray`` view on receive.

Both transports are *self-launching*: :meth:`Transport.open` spawns the
worker processes, handshakes them, and ships each its compiled segment
plus the weights it touches — so :class:`~repro.runtime.core.PipelineSession`
and :class:`~repro.serve.server.PipelineServer` drive real processes
through the exact ``configure() → open()`` flow they use for the
in-process and simulated backends, fault ladder and tracing included.

:class:`DistributedPipeline` keeps frames from *different* stages in
flight concurrently.  Since this refactor it is event-driven: a single
``selectors`` control loop owns every worker socket, dispatches each
stage's tiles, collects results as they arrive, and advances frames
stage to stage — no thread-per-stage blocking recv.  Stage compute
still happens in the worker processes; the loop only moves
control-plane bytes (and, on the TCP transport, tensor frames).

Worker failure recovery (extension): if a worker dies mid-task, the
transport redistributes its strip among the survivors
(capacity-weighted), ships them new tile programs via
:class:`Reconfigure`, and the frame replays from that stage boundary.
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import selectors
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.plan import PipelinePlan
from repro.models.graph import Model
from repro.nn.executor import Engine
from repro.nn.tiles import compile_block_paths_cached, compile_segment_cached
from repro.nn.weights import Weights, init_weights
from repro.partition.branches import concat_channel_blocks
from repro.partition.regions import Region
from repro.partition.strips import weighted_partition
from repro.runtime.core import (
    StageTrace,
    TaskTiming,
    Transport,
    emit_stage_trace,
)
from repro.runtime.faults import DeviceDead, RuntimeConfig, StageFailure
from repro.runtime.messages import (
    Hello,
    Reconfigure,
    Setup,
    ShmAttach,
    Shutdown,
    TileResult,
    TileTask,
    WorkerError,
)
from repro.runtime.program import (
    PlanProgram,
    TaskSpec,
    compile_plan,
    split_stage,
    stitch_stage,
    task_weight_names,
)
from repro.runtime.shm import ShmChannel, ShmRing
from repro.runtime.trace import TraceEvent, Tracer, coerce_tracer
from repro.runtime.transport import Channel, TransportClosed
from repro.runtime.worker import worker_main

# StageFailure moved to repro.runtime.faults; re-exported here for the
# existing import sites.
__all__ = [
    "DistributedPipeline",
    "RuntimeStats",
    "ShmTransport",
    "StageFailure",
    "TcpTransport",
]

_SENTINEL = object()


@dataclass
class RuntimeStats:
    """Measured behaviour of a distributed run."""

    latencies: List[float] = field(default_factory=list)
    makespan: float = 0.0
    worker_compute_s: Dict[int, float] = field(default_factory=dict)
    recoveries: int = 0

    @property
    def avg_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def throughput(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return len(self.latencies) / self.makespan


@dataclass
class _WorkerHandle:
    worker_id: int
    process: mp.Process
    task: TaskSpec
    stage_index: int
    channel: Optional[Channel] = None
    alive: bool = True
    #: Set when a repartition left the (healthy) worker with no work —
    #: distinguishes "idled" from "connection lost" for the event loop.
    retired: bool = False


class TcpTransport(Transport):
    """The framed-socket backend: one worker process per task.

    Conforms to the core :class:`~repro.runtime.core.Transport`
    protocol and is *self-launching*: :meth:`open` spawns one forked
    worker process per compiled task, handshakes them and ships their
    setups, so any session/server can use it directly.
    :meth:`run_tasks` scatters :class:`TileTask` frames to the stage's
    workers and gathers :class:`TileResult` frames; a lost worker
    surfaces as :class:`~repro.runtime.faults.DeviceDead`, which the
    shared fault ladder repairs via :meth:`repartition` (per-stage
    epochs discard stale results).
    """

    name = "tcp"

    def __init__(
        self,
        model: Model,
        weights: Optional[Weights] = None,
        *,
        seed: int = 0,
        stats: Optional[RuntimeStats] = None,
        stats_lock: Optional[threading.Lock] = None,
        fail_after: "Optional[Dict[str, int]]" = None,
        connect_timeout_s: float = 30.0,
    ) -> None:
        self.model = model
        self.weights = weights
        self._seed = seed
        self.stats = stats if stats is not None else RuntimeStats()
        self.stats_lock = stats_lock if stats_lock is not None else threading.Lock()
        self.fail_after = dict(fail_after or {})
        self.connect_timeout_s = connect_timeout_s
        self._handles: "List[List[_WorkerHandle]]" = []
        self._epochs: "List[int]" = []
        self._clock_epoch = time.perf_counter()
        self._pending_dead: "set" = set()
        self._pending_lock = threading.Lock()
        self._monitor: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()
        self._opened = False
        self._torn_down = False

    def open(self, program: PlanProgram) -> None:
        if self._opened:
            raise RuntimeError("transport is already open")
        super().open(program)
        if self.weights is None:
            self.weights = init_weights(self.model, self._seed)
        self._epochs = [0] * program.n_stages
        self._clock_epoch = time.perf_counter()
        try:
            self._launch_workers(program)
        except BaseException:
            self._opened = True  # close() must tear down the partial spawn
            self.close()
            raise
        self._opened = True

    def _now(self) -> float:
        return time.perf_counter() - self._clock_epoch

    def _tenant_view(self, engine: "Optional[Engine]" = None) -> "TcpTransport":
        # Each tenant view launches its own worker processes for its
        # own program; fleet-wide they pool stats and (via the base
        # class) the shared dead-device set.
        model = engine.model if engine is not None else self.model
        weights = engine.weights if engine is not None else self.weights
        return type(self)(
            model,
            weights,
            seed=self._seed,
            stats=self.stats,
            stats_lock=self.stats_lock,
            fail_after=self.fail_after,
            connect_timeout_s=self.connect_timeout_s,
        )

    def clock(self) -> float:
        return self._now()

    def penalty(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    # -- worker lifecycle ----------------------------------------------
    def _launch_workers(self, program: PlanProgram) -> None:
        """Spawn, handshake and set up one worker process per task."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        host, port = listener.getsockname()
        listener.listen(64)
        listener.settimeout(self.connect_timeout_s)

        worker_id = 0
        idle_timeout = (
            self._config.worker_idle_timeout_s
            if self._config is not None
            else None
        )
        ctx = mp.get_context("fork")
        for stage in program.stages:
            handles = []
            for task in stage.tasks:
                fail_after = self.fail_after.get(task.device_name)
                process = ctx.Process(
                    target=worker_main,
                    args=(host, port, worker_id, fail_after, idle_timeout),
                    daemon=True,
                )
                process.start()
                handles.append(
                    _WorkerHandle(worker_id, process, task, stage.index)
                )
                worker_id += 1
            self.bind_stage(stage.index, handles)

        # Accept connections and match them to handles via Hello.
        by_id = {h.worker_id: h for h in self.all_handles()}
        try:
            for _ in range(len(by_id)):
                conn, _addr = listener.accept()
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                channel = Channel(conn)
                hello = channel.recv()
                assert isinstance(hello, Hello)
                by_id[hello.worker_id].channel = channel
        finally:
            listener.close()

        # Transport-specific channel upgrade (the shm backend attaches
        # its rings here), then ship setups: each worker gets its
        # compiled program plus the weights its segment touches.
        for handle in self.all_handles():
            handle.channel = self._wrap_channel(handle)
        for stage in program.stages:
            if stage.branch:
                # Ship the whole block's weights: a failure may later
                # reassign any path to any surviving worker, and
                # Reconfigure does not carry parameters.
                unit = self.model.units[stage.start]
                block_names = {
                    layer.name for p in unit.paths for layer in p
                }
                subset = {
                    name: params
                    for name, params in self.weights.items()
                    if name in block_names
                }
                for handle in self.alive_handles(stage.index):
                    handle.channel.send(
                        Setup(self.model, handle.task.program, subset)
                    )
                continue
            for handle in self.alive_handles(stage.index):
                names = task_weight_names(handle.task.program)
                subset = {
                    name: params
                    for name, params in self.weights.items()
                    if name in names
                }
                handle.channel.send(
                    Setup(self.model, handle.task.program, subset)
                )

        # Fault-tolerance plumbing: bound worker recvs and start the
        # liveness monitor (the handshake above ran unbounded so slow
        # weight shipping never trips the timeout).
        if self._config is not None:
            if self._config.recv_timeout_s is not None:
                for handle in self.all_handles():
                    handle.channel.settimeout(self._config.recv_timeout_s)
            self.start_heartbeat(self._config.heartbeat_interval_s)

    def _wrap_channel(self, handle: _WorkerHandle) -> Channel:
        """Hook: upgrade a freshly accepted worker channel."""
        return handle.channel

    # -- heartbeats ----------------------------------------------------
    def start_heartbeat(self, interval_s: float) -> None:
        """Probe worker-process liveness every ``interval_s`` seconds.

        The monitor never mutates handles directly — it only flags
        worker ids in a pending set, which the driving loop/threads
        apply (mark dead + repartition) at the next frame boundary.
        That keeps channel use and repartitioning where the epoch
        protocol already makes them safe.
        """
        if self._monitor is not None:
            return
        self._monitor_stop.clear()

        def probe() -> None:
            while not self._monitor_stop.wait(interval_s):
                with self._pending_lock:
                    for handle in self.all_handles():
                        if handle.alive and not handle.process.is_alive():
                            self._pending_dead.add(handle.worker_id)

        self._monitor = threading.Thread(
            target=probe, name="heartbeat", daemon=True
        )
        self._monitor.start()

    def stop_heartbeat(self) -> None:
        if self._monitor is not None:
            self._monitor_stop.set()
            self._monitor.join(timeout=5.0)
            self._monitor = None

    def apply_heartbeats(self, stage_index: int) -> bool:
        """Mark this stage's monitor-flagged workers dead; True if any."""
        with self._pending_lock:
            if not self._pending_dead:
                return False
            flagged = [
                h
                for h in self._handles[stage_index]
                if h.alive and h.worker_id in self._pending_dead
            ]
            for h in flagged:
                h.alive = False
                self._pending_dead.discard(h.worker_id)
        return bool(flagged)

    def needs_repartition(self, stage_index: int) -> bool:
        """A stage needs repair when the heartbeat flagged one of *its*
        workers.  (The base-class check keys on dead device *names*,
        which here would keep firing for every stage hosting a same-name
        worker whose own process is perfectly healthy.)"""
        return self.apply_heartbeats(stage_index)

    def bind_stage(self, stage_index: int, handles: "List[_WorkerHandle]") -> None:
        while len(self._handles) <= stage_index:
            self._handles.append([])
        self._handles[stage_index] = handles

    def alive_handles(self, stage_index: int) -> "List[_WorkerHandle]":
        return [h for h in self._handles[stage_index] if h.alive]

    def stage_tasks(self, stage_index: int) -> "Tuple[TaskSpec, ...]":
        handles = self.alive_handles(stage_index)
        if not handles:
            raise StageFailure(f"stage {stage_index}: no workers left")
        return tuple(h.task for h in handles)

    def stage_epoch(self, stage_index: int) -> int:
        return self._epochs[stage_index]

    def run_tasks(
        self,
        stage_index: int,
        tiles: "Sequence[np.ndarray]",
        frame: int,
    ) -> "Tuple[List[np.ndarray], StageTrace]":
        handles = self.alive_handles(stage_index)
        epoch = self._epochs[stage_index]
        entry = self._now()
        send_spans = []
        for handle, tile in zip(handles, tiles):
            t0 = self._now()
            try:
                handle.channel.send(TileTask(frame, tile, epoch))
            except OSError:  # includes TransportClosed / broken pipes
                handle.alive = False
                raise DeviceDead(
                    handle.task.device_name,
                    f"worker {handle.worker_id} unreachable",
                ) from None
            send_spans.append((t0, self._now()))
        outs: "List[np.ndarray]" = []
        timings: "List[TaskTiming]" = []
        for handle, span in zip(handles, send_spans):
            while True:
                try:
                    message = handle.channel.recv()
                except TransportClosed:
                    handle.alive = False
                    raise DeviceDead(
                        handle.task.device_name,
                        f"worker {handle.worker_id} connection lost",
                    ) from None
                if getattr(message, "epoch", epoch) < epoch:
                    continue  # stale result from before a repartition
                break
            recv_end = self._now()
            if isinstance(message, WorkerError):
                raise RuntimeError(
                    f"worker {message.worker_id} failed task "
                    f"{message.task_id}: {message.message}"
                )
            assert isinstance(message, TileResult)
            outs.append(message.tile)
            timings.append(
                TaskTiming(
                    send=span,
                    compute=(
                        max(span[1], recv_end - message.compute_s),
                        recv_end,
                    ),
                    recv=(recv_end, recv_end),
                )
            )
            with self.stats_lock:
                self.stats.worker_compute_s[handle.worker_id] = (
                    self.stats.worker_compute_s.get(handle.worker_id, 0.0)
                    + message.compute_s
                )
        outs = self.materialise_outputs(
            stage_index, tuple(h.task for h in handles), outs
        )
        return outs, StageTrace(entry, entry, self._now(), tuple(timings))

    def materialise_outputs(
        self,
        stage_index: int,
        tasks: "Sequence[TaskSpec]",
        outs: "List[np.ndarray]",
    ) -> "List[np.ndarray]":
        """Hook: make result tiles safe to hand past the stitch (the
        shm backend copies the one case where a slot view would escape)."""
        return outs

    # ------------------------------------------------------------------
    def repartition(self, stage_index: int) -> None:
        """Redistribute the stage partition over surviving workers."""
        survivors = self.alive_handles(stage_index)
        if not survivors:
            raise StageFailure(f"stage {stage_index}: no workers left")
        self._epochs[stage_index] += 1
        stage = self._program.stages[stage_index]
        if stage.branch:
            from repro.partition.branches import assign_paths_lpt, path_flops

            weights = path_flops(self.model, stage.start)
            groups = assign_paths_lpt(
                weights, [h.task.capacity for h in survivors]
            )
            for handle, group in zip(survivors, groups):
                if not group:
                    handle.alive = False  # healthy, just out of work
                    handle.retired = True
                    continue
                program = compile_block_paths_cached(
                    self.model, stage.start, tuple(sorted(group))
                )
                handle.task = TaskSpec(
                    handle.task.device_name,
                    handle.task.capacity,
                    program,
                    None,
                    tuple(concat_channel_blocks(self.model, stage.start, group)),
                    tuple(sorted(group)),
                )
                handle.channel.send(Reconfigure(program))
            with self.stats_lock:
                self.stats.recoveries += 1
            return
        if stage.channel:
            from repro.nn.tiles import compile_channel_slice_cached

            c_out = stage.out_shape[0]
            slices = weighted_partition(
                c_out, [hd.task.capacity for hd in survivors]
            )
            for handle, iv in zip(survivors, slices):
                if iv.end <= iv.start:
                    handle.alive = False  # nothing left for it to do
                    handle.retired = True
                    continue
                program = compile_channel_slice_cached(
                    self.model, stage.start, iv.start, iv.end
                )
                handle.task = TaskSpec(
                    handle.task.device_name,
                    handle.task.capacity,
                    program,
                    None,
                    ((0, iv.end - iv.start, iv.start, iv.end),),
                )
                handle.channel.send(Reconfigure(program))
            with self.stats_lock:
                self.stats.recoveries += 1
            return
        _, h, w = stage.out_shape
        rows = weighted_partition(h, [hd.task.capacity for hd in survivors])
        for handle, iv in zip(survivors, rows):
            region = Region.from_bounds(iv.start, iv.end, 0, w)
            if region.empty:
                handle.alive = False  # nothing left for it to do
                handle.retired = True
                continue
            program = compile_segment_cached(
                self.model, stage.start, stage.end, region
            )
            handle.task = TaskSpec(
                handle.task.device_name,
                handle.task.capacity,
                program,
                region,
                None,
            )
            handle.channel.send(Reconfigure(program))
        with self.stats_lock:
            self.stats.recoveries += 1

    def rebind(self, program: PlanProgram) -> None:
        raise NotImplementedError(
            "process-backed transports cannot adopt a new plan mid-session "
            "(workers hold compiled segments); restart the pipeline instead"
        )

    def all_handles(self) -> "List[_WorkerHandle]":
        return [h for handles in self._handles for h in handles]

    def close(self) -> None:
        if self._torn_down:
            return
        self._torn_down = True
        self.stop_heartbeat()
        for handle in self.all_handles():
            if handle.channel is not None:
                try:
                    handle.channel.send(Shutdown())
                except (TransportClosed, OSError):
                    pass
                handle.channel.close()
        for handle in self.all_handles():
            handle.process.join(timeout=10.0)
            if handle.process.is_alive():
                handle.process.terminate()


class ShmTransport(TcpTransport):
    """Same worker processes, zero-copy tensor plane.

    Each worker channel gets two shared-memory slot rings
    (:class:`~repro.runtime.shm.ShmRing`) sized for the stage's full
    input/output maps; tile payloads ride slots while control frames
    stay on the socket.  The coordinator creates every ring and unlinks
    them all in :meth:`close` — including after worker crashes and on
    ``KeyboardInterrupt`` (an ``atexit`` hook covers hard exits).

    ``slots_per_ring`` bounds the frames a channel can buffer; a full
    ring blocks the sender, and :meth:`backpressure` reports the
    highest send-ring occupancy so the serving layer can shed ahead of
    the block.  ``slot_frames`` scales slots for cross-frame batches
    (a batch bigger than ``slot_frames`` falls back to inline frames —
    slower, never wrong).
    """

    name = "shm"

    def __init__(
        self,
        model: Model,
        weights: Optional[Weights] = None,
        *,
        slots_per_ring: int = 4,
        slot_frames: int = 1,
        **kwargs,
    ) -> None:
        super().__init__(model, weights, **kwargs)
        if slots_per_ring < 2:
            # One slot can never recycle: a slot frees on the *next*
            # control frame after its consumption.
            raise ValueError("slots_per_ring must be >= 2")
        if slot_frames < 1:
            raise ValueError("slot_frames must be >= 1")
        self.slots_per_ring = slots_per_ring
        self.slot_frames = slot_frames
        self._rings: "List[ShmRing]" = []
        self._send_rings: "List[ShmRing]" = []

    def _tenant_view(self, engine: "Optional[Engine]" = None) -> "ShmTransport":
        model = engine.model if engine is not None else self.model
        weights = engine.weights if engine is not None else self.weights
        return ShmTransport(
            model,
            weights,
            slots_per_ring=self.slots_per_ring,
            slot_frames=self.slot_frames,
            seed=self._seed,
            stats=self.stats,
            stats_lock=self.stats_lock,
            fail_after=self.fail_after,
            connect_timeout_s=self.connect_timeout_s,
        )

    def _slot_bytes(self, stage_index: int) -> int:
        """A slot fits the stage's largest possible tile: its full
        input map or full output map (repartitions can grow any task's
        tile up to either bound), times the batch headroom."""
        stage = self._program.stages[stage_index]
        if stage.start == 0:
            in_shape = self.model.input_shape
        else:
            in_shape = self.model.out_shape(stage.start - 1)
        in_bytes = int(np.prod(in_shape)) * 4
        out_bytes = int(np.prod(stage.out_shape)) * 4
        return max(in_bytes, out_bytes) * self.slot_frames

    def _wrap_channel(self, handle: _WorkerHandle) -> Channel:
        slot_bytes = self._slot_bytes(handle.stage_index)
        to_worker = ShmRing.create(slot_bytes, self.slots_per_ring)
        from_worker = ShmRing.create(slot_bytes, self.slots_per_ring)
        self._rings.extend((to_worker, from_worker))
        self._send_rings.append(to_worker)
        handle.channel.send(
            ShmAttach(
                send_name=from_worker.name,
                recv_name=to_worker.name,
                slot_bytes=to_worker.slot_bytes,
                n_slots=to_worker.n_slots,
            )
        )
        return ShmChannel(
            handle.channel.sock, send_ring=to_worker, recv_ring=from_worker
        )

    def materialise_outputs(
        self,
        stage_index: int,
        tasks: "Sequence[TaskSpec]",
        outs: "List[np.ndarray]",
    ) -> "List[np.ndarray]":
        # stitch_stage passes a single full-map tile through unchanged;
        # a ring-slot view escaping as the stage output would be
        # overwritten on slot reuse, so own it here.  Every other shape
        # is copied by the stitch itself before the slot can recycle.
        if len(tasks) == 1 and tasks[0].region is not None and outs:
            region = tasks[0].region
            stage = self.current_stage(stage_index)
            if (
                (region.height, region.width) == stage.out_shape[1:]
                and outs[0].base is not None
            ):
                # .copy(), not ascontiguousarray — the slot view *is*
                # contiguous, and ascontiguousarray would return it
                # unchanged.
                outs[0] = outs[0].copy()
        return outs

    def backpressure(self) -> float:
        """Highest send-ring occupancy — 1.0 means the next frame's
        send would block on slot acquire."""
        if not self._send_rings:
            return 0.0
        return max(ring.occupancy() for ring in self._send_rings)

    def close(self) -> None:
        if self._torn_down:
            return
        super().close()  # workers shut down and detach first
        for ring in self._rings:
            ring.destroy()


@dataclass
class _InFlight:
    """One frame being served by one stage, driven by the event loop."""

    frame: int
    x: np.ndarray
    tasks: "Tuple[TaskSpec, ...]"
    tiles: "List[np.ndarray]"
    epoch: int
    entry: float
    deadline: Optional[float]
    send_spans: "List[Tuple[float, float]]" = field(default_factory=list)
    pos: "Dict[int, int]" = field(default_factory=dict)
    outs: "List[Optional[np.ndarray]]" = field(default_factory=list)
    timings: "List[Optional[TaskTiming]]" = field(default_factory=list)
    filled: int = 0

    @property
    def complete(self) -> bool:
        return self.filled == len(self.tasks)


class _EventLoop(threading.Thread):
    """The single ``selectors``-driven control loop of the coordinator.

    Owns every worker socket (non-blocking) plus a self-pipe for
    submissions and shutdown.  Each stage serves one frame at a time
    (FIFO per stage, matching the old thread-per-stage semantics) while
    different stages overlap freely; results are collected as they
    arrive — no blocking recv anywhere, so one thread drives every
    in-flight frame.  Worker death (EOF, heartbeat flag, recv deadline)
    triggers the same repartition-and-replay recovery the fault ladder
    performs on the session path, guarded by the per-stage epochs.
    """

    def __init__(
        self,
        program: PlanProgram,
        transport: TcpTransport,
        recover: bool,
        tracer: Optional[Tracer],
    ) -> None:
        super().__init__(name="coordinator", daemon=True)
        self.program = program
        self.transport = transport
        self.recover = recover
        self.tracer = tracer
        self.results: "queue.Queue" = queue.Queue()
        self.error: Optional[BaseException] = None
        self._sel = selectors.DefaultSelector()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._lock = threading.Lock()
        self._submissions: "deque" = deque()
        self._stopping = False
        n = program.n_stages
        self._queues: "List[deque]" = [deque() for _ in range(n)]
        self._busy: "List[Optional[_InFlight]]" = [None] * n
        self._registered: "Dict[int, _WorkerHandle]" = {}

    # -- cross-thread interface ----------------------------------------
    def submit(self, frame: int, x: np.ndarray) -> None:
        with self._lock:
            self._submissions.append((frame, x))
        self._wake()

    def shutdown(self) -> None:
        with self._lock:
            self._stopping = True
        self._wake()

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\0")
        except OSError:
            pass

    # -- loop body ------------------------------------------------------
    def run(self) -> None:
        try:
            self._sel.register(self._wake_r, selectors.EVENT_READ, None)
            for handle in self.transport.all_handles():
                if handle.alive and handle.channel is not None:
                    handle.channel.set_nonblocking()
                    self._sel.register(
                        handle.channel.sock, selectors.EVENT_READ, handle
                    )
                    self._registered[handle.worker_id] = handle
            while True:
                self._drain_submissions()
                self._dispatch_ready()
                if self._stopping and self._idle():
                    return
                for key, _events in self._sel.select(self._tick_timeout()):
                    if key.data is None:
                        self._drain_wake()
                    else:
                        self._service(key.data)
                self._apply_heartbeats()
                self._check_deadlines()
        except BaseException as exc:  # surfaced at collect()
            self.error = exc
        finally:
            self.results.put(_SENTINEL)
            try:
                self._sel.close()
            except OSError:
                pass
            self._wake_r.close()
            self._wake_w.close()

    def _idle(self) -> bool:
        with self._lock:
            if self._submissions:
                return False
        return all(b is None for b in self._busy) and not any(self._queues)

    def _tick_timeout(self) -> "Optional[float]":
        config = self.transport.config
        timeout = config.heartbeat_interval_s if config is not None else None
        deadlines = [
            b.deadline for b in self._busy if b is not None and b.deadline
        ]
        if deadlines:
            now = self.transport.clock()
            nearest = max(0.0, min(deadlines) - now)
            timeout = nearest if timeout is None else min(timeout, nearest)
        return timeout

    def _drain_wake(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass

    def _drain_submissions(self) -> None:
        with self._lock:
            items, self._submissions = self._submissions, deque()
        self._queues[0].extend(items)

    def _dispatch_ready(self) -> None:
        for stage_index in range(self.program.n_stages):
            if self._busy[stage_index] is None and self._queues[stage_index]:
                frame, x = self._queues[stage_index].popleft()
                self._dispatch(stage_index, frame, x)

    def _dispatch(self, stage_index: int, frame: int, x: np.ndarray) -> None:
        transport = self.transport
        tasks = transport.stage_tasks(stage_index)  # StageFailure if none
        tiles = split_stage(tasks, x)
        handles = transport.alive_handles(stage_index)
        config = transport.config
        entry = transport.clock()
        deadline = (
            entry + config.recv_timeout_s
            if config is not None and config.recv_timeout_s is not None
            else None
        )
        inflight = _InFlight(
            frame, x, tasks, tiles,
            transport.stage_epoch(stage_index), entry, deadline,
            outs=[None] * len(tasks), timings=[None] * len(tasks),
        )
        self._busy[stage_index] = inflight
        for i, (handle, tile) in enumerate(zip(handles, tiles)):
            t0 = transport.clock()
            try:
                handle.channel.send(TileTask(frame, tile, inflight.epoch))
            except OSError:
                # _worker_lost repartitions and re-dispatches this very
                # frame with a fresh task set; abandon this attempt.
                self._worker_lost(handle)
                return
            inflight.send_spans.append((t0, transport.clock()))
            inflight.pos[handle.worker_id] = i

    def _service(self, handle: _WorkerHandle) -> None:
        try:
            messages = handle.channel.recv_ready()
        except TransportClosed:
            self._worker_lost(handle)
            return
        for message in messages:
            self._on_message(handle, message)

    def _on_message(self, handle: _WorkerHandle, message) -> None:
        if isinstance(message, WorkerError):
            raise RuntimeError(
                f"worker {message.worker_id} failed task "
                f"{message.task_id}: {message.message}"
            )
        if not isinstance(message, TileResult):
            raise RuntimeError(
                f"unexpected {type(message).__name__} from worker "
                f"{handle.worker_id}"
            )
        stage_index = handle.stage_index
        transport = self.transport
        inflight = self._busy[stage_index]
        if (
            inflight is None
            or message.epoch < transport.stage_epoch(stage_index)
            or message.task_id != inflight.frame
        ):
            return  # stale result from before a repartition/replay
        i = inflight.pos.get(handle.worker_id)
        if i is None or inflight.outs[i] is not None:
            return
        recv_end = transport.clock()
        span = inflight.send_spans[i]
        inflight.outs[i] = message.tile
        inflight.timings[i] = TaskTiming(
            send=span,
            compute=(max(span[1], recv_end - message.compute_s), recv_end),
            recv=(recv_end, recv_end),
        )
        inflight.filled += 1
        with transport.stats_lock:
            transport.stats.worker_compute_s[handle.worker_id] = (
                transport.stats.worker_compute_s.get(handle.worker_id, 0.0)
                + message.compute_s
            )
        if inflight.complete:
            self._complete(stage_index, inflight)

    def _complete(self, stage_index: int, inflight: _InFlight) -> None:
        transport = self.transport
        outs = transport.materialise_outputs(
            stage_index, inflight.tasks, list(inflight.outs)
        )
        st = StageTrace(
            inflight.entry,
            inflight.entry,
            transport.clock(),
            tuple(inflight.timings),
        )
        emit_stage_trace(
            self.tracer, (inflight.frame,), stage_index,
            inflight.tasks, inflight.tiles, outs, st,
        )
        out = stitch_stage(
            transport.current_stage(stage_index), inflight.tasks, outs
        )
        self._busy[stage_index] = None
        if stage_index + 1 < self.program.n_stages:
            self._queues[stage_index + 1].append((inflight.frame, out))
        else:
            self.results.put((inflight.frame, out))

    # -- failure handling ----------------------------------------------
    def _worker_lost(self, handle: _WorkerHandle) -> None:
        stage_index = handle.stage_index
        handle.alive = False
        if self._registered.pop(handle.worker_id, None) is not None:
            try:
                self._sel.unregister(handle.channel.sock)
            except (KeyError, ValueError, OSError):
                pass
        if not self.recover:
            raise StageFailure(
                f"stage {stage_index}: worker connection lost"
            )
        transport = self.transport
        if transport.mark_dead(handle.task.device_name) and self.tracer:
            now = transport.clock()
            self.tracer.emit(
                TraceEvent(
                    "device_dead", self._current_frame(stage_index),
                    stage_index, handle.task.device_name, now, now,
                )
            )
        transport.repartition(stage_index)  # StageFailure when none left
        inflight, self._busy[stage_index] = self._busy[stage_index], None
        if inflight is not None:
            if self.tracer:
                now = transport.clock()
                self.tracer.emit(
                    TraceEvent(
                        "frame_replayed", inflight.frame, stage_index,
                        handle.task.device_name, now, now,
                    )
                )
            self._dispatch(stage_index, inflight.frame, inflight.x)

    def _current_frame(self, stage_index: int) -> int:
        inflight = self._busy[stage_index]
        return inflight.frame if inflight is not None else -1

    def _apply_heartbeats(self) -> None:
        if self.transport.config is None:
            return
        for stage_index in range(self.program.n_stages):
            self.transport.apply_heartbeats(stage_index)
        lost = [
            h for h in list(self._registered.values())
            if not h.alive and not h.retired
        ]
        for handle in lost:
            self._worker_lost(handle)

    def _check_deadlines(self) -> None:
        now = self.transport.clock()
        for stage_index, inflight in enumerate(self._busy):
            if inflight is None or inflight.deadline is None:
                continue
            if now <= inflight.deadline:
                continue
            # Declare the slowest missing worker dead; recovery
            # re-dispatches with a fresh deadline for the survivors.
            for handle in list(self._registered.values()):
                if handle.stage_index != stage_index or not handle.alive:
                    continue
                i = inflight.pos.get(handle.worker_id)
                if i is not None and inflight.outs[i] is None:
                    self._worker_lost(handle)
                    break


class DistributedPipeline:
    """Execute a :class:`PipelinePlan` on real OS processes.

    Usage::

        with DistributedPipeline(model, plan) as pipe:
            outputs, stats = pipe.run_batch(inputs)

    ``transport`` selects the tensor plane: ``"tcp"`` (framed sockets)
    or ``"shm"`` (shared-memory slot rings, zero-copy on the same
    host).  Either way a single event-driven control loop coordinates
    every stage's worker processes.

    ``trace`` follows the shared contract (``Tracer | bool | None``,
    see :func:`~repro.runtime.trace.coerce_tracer`): per-frame
    :class:`~repro.runtime.trace.TraceEvent` records are available as
    ``pipe.trace`` after the run, on the same schema the in-process and
    simulated backends emit.

    A :class:`~repro.runtime.faults.RuntimeConfig` turns on the fault
    tolerance layer: heartbeat probing of worker processes, recv
    timeouts on worker channels, worker idle timeouts, and recovery
    (``config.recover`` supersedes the legacy ``recover`` flag).
    """

    def __init__(
        self,
        model: Model,
        plan: PipelinePlan,
        weights: Optional[Weights] = None,
        seed: int = 0,
        recover: bool = False,
        fail_after: "Optional[Dict[str, int]]" = None,
        connect_timeout_s: float = 30.0,
        trace=False,
        config: "Optional[RuntimeConfig]" = None,
        transport: str = "tcp",
    ) -> None:
        self.model = model
        self.plan = plan
        self.program = compile_plan(model, plan)
        self.weights = weights if weights is not None else init_weights(model, seed)
        self.config = config
        self.recover = config.recover if config is not None else recover
        self.fail_after = fail_after or {}
        self.connect_timeout_s = connect_timeout_s
        self.stats = RuntimeStats()
        self._stats_lock = threading.Lock()
        self._engine = Engine(model, self.weights)
        self._tracer = coerce_tracer(trace)
        transports = {"tcp": TcpTransport, "shm": ShmTransport}
        if transport not in transports:
            raise ValueError(
                f"unknown transport {transport!r} (use 'tcp' or 'shm')"
            )
        self.transport = transports[transport](
            model,
            self.weights,
            stats=self.stats,
            stats_lock=self._stats_lock,
            fail_after=self.fail_after,
            connect_timeout_s=connect_timeout_s,
        )
        if config is not None:
            self.transport.configure(config)
        self._loop: "Optional[_EventLoop]" = None
        self._submit_times: "Dict[int, float]" = {}
        self._next_task = 0
        self._started = False
        self._closed = False
        self._first_submit: Optional[float] = None

    @property
    def trace(self):
        """Collected trace events (empty unless ``trace=True``)."""
        return self._tracer.events if self._tracer is not None else ()

    # ------------------------------------------------------------------
    def start(self) -> "DistributedPipeline":
        if self._started:
            return self
        self.transport.open(self.program)
        self._loop = _EventLoop(
            self.program, self.transport, self.recover, self._tracer
        )
        self._loop.start()
        self._started = True
        return self

    # ------------------------------------------------------------------
    def submit(self, x: np.ndarray) -> int:
        """Feed one input; returns its task id."""
        if not self._started:
            raise RuntimeError("pipeline not started")
        if x.shape != self.model.input_shape:
            raise ValueError(
                f"input shape {x.shape} != model input {self.model.input_shape}"
            )
        task_id = self._next_task
        self._next_task += 1
        now = time.perf_counter()
        if self._first_submit is None:
            self._first_submit = now
        self._submit_times[task_id] = now
        self._loop.submit(task_id, np.ascontiguousarray(x, dtype=np.float32))
        return task_id

    def collect(self, timeout_s: float = 120.0) -> Tuple[int, np.ndarray]:
        """Fetch one completed (task_id, output) from the final stage."""
        item = self._loop.results.get(timeout=timeout_s)
        if item is _SENTINEL:
            self._loop.results.put(_SENTINEL)  # keep later collects failing
            if self._loop.error is not None:
                raise self._loop.error
            raise RuntimeError("pipeline terminated unexpectedly")
        task_id, features = item
        now = time.perf_counter()
        with self._stats_lock:
            self.stats.latencies.append(now - self._submit_times.pop(task_id))
            if self._first_submit is not None:
                self.stats.makespan = now - self._first_submit
        output = self._engine.run_head(features) if self.model.head else features
        return task_id, output

    def run_batch(
        self, inputs: "Sequence[np.ndarray]", timeout_s: float = 120.0
    ) -> Tuple[List[np.ndarray], RuntimeStats]:
        """Submit every input, gather every output (in submit order)."""
        ids = [self.submit(x) for x in inputs]
        outputs: "Dict[int, np.ndarray]" = {}
        for _ in ids:
            task_id, out = self.collect(timeout_s)
            outputs[task_id] = out
        return [outputs[i] for i in ids], self.stats

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._started:
            self._loop.shutdown()
            self._loop.join(timeout=10.0)
            self.transport.close()

    def __enter__(self) -> "DistributedPipeline":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
