"""Coordinator: drives a plan on real worker processes.

Implements the paper's Fig. 6 workflow.  Each stage runs as a thread:
it takes a feature map from its input queue, splits it into the
pre-compiled per-device tiles, scatters them to the stage's worker
processes over TCP, gathers and stitches the results, and forwards the
stitched map to the next stage's queue.  Stages overlap on different
tasks — a real inference pipeline, not a simulation.

Worker failure recovery (extension): if a worker dies mid-task, the
stage redistributes its strip among the survivors (capacity-weighted),
ships them new tile programs via :class:`Reconfigure`, and replays the
task.
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.plan import PipelinePlan, StagePlan
from repro.models.graph import Model
from repro.nn.executor import Engine
from repro.nn.tiles import (
    SegmentProgram,
    compile_block_paths_cached,
    compile_segment_cached,
    extract_tile,
)
from repro.nn.weights import Weights, init_weights
from repro.partition.branches import concat_channel_blocks
from repro.partition.regions import Region
from repro.partition.strips import weighted_partition
from repro.runtime.messages import (
    Hello,
    Reconfigure,
    Setup,
    Shutdown,
    TileResult,
    TileTask,
    WorkerError,
)
from repro.runtime.transport import Channel, TransportClosed
from repro.runtime.worker import worker_main

__all__ = ["DistributedPipeline", "RuntimeStats", "StageFailure"]

_SENTINEL = object()


class StageFailure(RuntimeError):
    """A stage lost all of its workers."""


@dataclass
class RuntimeStats:
    """Measured behaviour of a distributed run."""

    latencies: List[float] = field(default_factory=list)
    makespan: float = 0.0
    worker_compute_s: Dict[int, float] = field(default_factory=dict)
    recoveries: int = 0

    @property
    def avg_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def throughput(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return len(self.latencies) / self.makespan


def _collect_weight_names(program: SegmentProgram) -> "set[str]":
    names = set()
    for unit in program.units:
        for step in unit.steps:
            names.add(step.layer.name)
        for path in unit.paths:
            for step in path.steps:
                names.add(step.layer.name)
    return names


@dataclass
class _WorkerHandle:
    worker_id: int
    device_name: str
    capacity: float
    process: mp.Process
    channel: Optional[Channel] = None
    program: Optional[SegmentProgram] = None
    alive: bool = True
    #: Branch-parallel stages: the block paths this worker executes and
    #: the channel copy list [(tile_lo, tile_hi, out_lo, out_hi), ...]
    #: mapping its tile's channel blocks into the concat output.
    paths: Optional[Tuple[int, ...]] = None
    channel_blocks: Optional[List[Tuple[int, int, int, int]]] = None


class _StageRunner(threading.Thread):
    """One pipeline stage: split → scatter → gather → stitch → forward."""

    def __init__(
        self,
        index: int,
        stage: StagePlan,
        model: Model,
        workers: "List[_WorkerHandle]",
        in_queue: "queue.Queue",
        out_queue: "queue.Queue",
        stats: RuntimeStats,
        stats_lock: threading.Lock,
        recover: bool,
    ) -> None:
        super().__init__(name=f"stage-{index}", daemon=True)
        self.index = index
        self.stage = stage
        self.model = model
        self.workers = workers
        self.in_queue = in_queue
        self.out_queue = out_queue
        self.stats = stats
        self.stats_lock = stats_lock
        self.recover = recover
        self.out_shape = model.out_shape(stage.end - 1)
        self.error: Optional[BaseException] = None
        self._epoch = 0

    def run(self) -> None:
        try:
            while True:
                item = self.in_queue.get()
                if item is _SENTINEL:
                    self.out_queue.put(_SENTINEL)
                    return
                task_id, feature_map = item
                output = self._process(task_id, feature_map)
                self.out_queue.put((task_id, output))
        except BaseException as exc:  # surface to the coordinator
            self.error = exc
            self.out_queue.put(_SENTINEL)

    # ------------------------------------------------------------------
    def _alive_workers(self) -> "List[_WorkerHandle]":
        return [w for w in self.workers if w.alive]

    def _process(self, task_id: int, feature_map: np.ndarray) -> np.ndarray:
        while True:
            workers = self._alive_workers()
            if not workers:
                raise StageFailure(f"stage {self.index}: no workers left")
            try:
                return self._scatter_gather(task_id, feature_map, workers)
            except TransportClosed:
                if not self.recover:
                    raise StageFailure(
                        f"stage {self.index}: worker connection lost"
                    ) from None
                self._repartition()

    def _scatter_gather(
        self,
        task_id: int,
        feature_map: np.ndarray,
        workers: "List[_WorkerHandle]",
    ) -> np.ndarray:
        for worker in workers:
            assert worker.program is not None
            tile = extract_tile(feature_map, worker.program.input_region)
            worker.channel.send(TileTask(task_id, tile, self._epoch))
        output = np.empty(self.out_shape, dtype=np.float32)
        for worker in workers:
            while True:
                try:
                    message = worker.channel.recv()
                except TransportClosed:
                    worker.alive = False
                    raise
                if getattr(message, "epoch", self._epoch) < self._epoch:
                    continue  # stale result from before a repartition
                break
            if isinstance(message, WorkerError):
                raise RuntimeError(
                    f"worker {message.worker_id} failed task "
                    f"{message.task_id}: {message.message}"
                )
            assert isinstance(message, TileResult)
            if worker.channel_blocks is not None:
                for t_lo, t_hi, o_lo, o_hi in worker.channel_blocks:
                    output[o_lo:o_hi] = message.tile[t_lo:t_hi]
            else:
                region = worker.program.out_region
                output[
                    :,
                    region.rows.start : region.rows.end,
                    region.cols.start : region.cols.end,
                ] = message.tile
            with self.stats_lock:
                self.stats.worker_compute_s[worker.worker_id] = (
                    self.stats.worker_compute_s.get(worker.worker_id, 0.0)
                    + message.compute_s
                )
        return output

    def _repartition(self) -> None:
        """Redistribute the stage partition over surviving workers."""
        survivors = self._alive_workers()
        if not survivors:
            raise StageFailure(f"stage {self.index}: no workers left")
        self._epoch += 1
        if self.stage.path_groups is not None:
            from repro.partition.branches import assign_paths_lpt, path_flops

            weights = path_flops(self.model, self.stage.start)
            groups = assign_paths_lpt(
                weights, [wk.capacity for wk in survivors]
            )
            for worker, group in zip(survivors, groups):
                if not group:
                    worker.program = None
                    worker.alive = False
                    continue
                worker.program = compile_block_paths_cached(
                    self.model, self.stage.start, group
                )
                worker.paths = tuple(sorted(group))
                worker.channel_blocks = concat_channel_blocks(
                    self.model, self.stage.start, group
                )
                worker.channel.send(Reconfigure(worker.program))
            with self.stats_lock:
                self.stats.recoveries += 1
            return
        _, h, w = self.out_shape
        rows = weighted_partition(h, [wk.capacity for wk in survivors])
        for worker, iv in zip(survivors, rows):
            region = Region.from_bounds(iv.start, iv.end, 0, w)
            if region.empty:
                worker.program = None
                worker.alive = False  # nothing left for it to do
                continue
            program = compile_segment_cached(
                self.model, self.stage.start, self.stage.end, region
            )
            worker.program = program
            worker.channel.send(Reconfigure(program))
        with self.stats_lock:
            self.stats.recoveries += 1


class DistributedPipeline:
    """Execute a :class:`PipelinePlan` on real OS processes.

    Usage::

        with DistributedPipeline(model, plan) as pipe:
            outputs, stats = pipe.run_batch(inputs)
    """

    def __init__(
        self,
        model: Model,
        plan: PipelinePlan,
        weights: Optional[Weights] = None,
        seed: int = 0,
        recover: bool = False,
        fail_after: "Optional[Dict[str, int]]" = None,
        connect_timeout_s: float = 30.0,
    ) -> None:
        if plan.stages[-1].end != model.n_units:
            raise ValueError("plan does not cover the whole model")
        self.model = model
        self.plan = plan
        self.weights = weights if weights is not None else init_weights(model, seed)
        self.recover = recover
        self.fail_after = fail_after or {}
        self.connect_timeout_s = connect_timeout_s
        self.stats = RuntimeStats()
        self._stats_lock = threading.Lock()
        self._engine = Engine(model, self.weights)
        self._stages: "List[_StageRunner]" = []
        self._workers: "List[_WorkerHandle]" = []
        self._queues: "List[queue.Queue]" = []
        self._submit_times: "Dict[int, float]" = {}
        self._next_task = 0
        self._started = False
        self._closed = False
        self._first_submit: Optional[float] = None

    # ------------------------------------------------------------------
    def start(self) -> "DistributedPipeline":
        if self._started:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        host, port = listener.getsockname()
        listener.listen(64)
        listener.settimeout(self.connect_timeout_s)

        # Spawn one worker process per non-empty assignment.
        stage_workers: "List[List[_WorkerHandle]]" = []
        worker_id = 0
        ctx = mp.get_context("fork")
        for stage in self.plan.stages:
            handles = []
            for slot, (device, region) in enumerate(stage.assignments):
                if region.empty:
                    continue
                if stage.path_groups is not None and not stage.path_groups[slot]:
                    continue  # idle device in a branch stage
                fail_after = self.fail_after.get(device.name)
                process = ctx.Process(
                    target=worker_main,
                    args=(host, port, worker_id, fail_after),
                    daemon=True,
                )
                process.start()
                handles.append(
                    _WorkerHandle(worker_id, device.name, device.capacity, process)
                )
                worker_id += 1
            if not handles:
                listener.close()
                raise ValueError("a stage has no non-empty assignments")
            stage_workers.append(handles)

        # Accept connections and match them to handles via Hello.
        by_id = {
            h.worker_id: h for handles in stage_workers for h in handles
        }
        try:
            for _ in range(len(by_id)):
                conn, _addr = listener.accept()
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                channel = Channel(conn)
                hello = channel.recv()
                assert isinstance(hello, Hello)
                by_id[hello.worker_id].channel = channel
        finally:
            listener.close()

        # Compile programs and ship setups.
        for stage, handles in zip(self.plan.stages, stage_workers):
            if stage.path_groups is not None:
                live = [
                    group for group in stage.path_groups if group
                ]
                unit = self.model.units[stage.start]
                # Ship the whole block's weights: a failure may later
                # reassign any path to any surviving worker, and
                # Reconfigure does not carry parameters.
                block_names = {
                    layer.name for p in unit.paths for layer in p
                }
                subset = {
                    name: params
                    for name, params in self.weights.items()
                    if name in block_names
                }
                for group, handle in zip(live, handles):
                    program = compile_block_paths_cached(
                        self.model, stage.start, tuple(sorted(group))
                    )
                    handle.program = program
                    handle.paths = tuple(sorted(group))
                    handle.channel_blocks = concat_channel_blocks(
                        self.model, stage.start, group
                    )
                    handle.channel.send(Setup(self.model, program, subset))
                continue
            live = [
                (device, region)
                for device, region in stage.assignments
                if not region.empty
            ]
            for (device, region), handle in zip(live, handles):
                program = compile_segment_cached(self.model, stage.start, stage.end, region)
                handle.program = program
                names = _collect_weight_names(program)
                subset = {
                    name: params
                    for name, params in self.weights.items()
                    if name in names
                }
                handle.channel.send(Setup(self.model, program, subset))

        # Wire queues and stage threads.
        self._queues = [queue.Queue() for _ in range(len(self.plan.stages) + 1)]
        for index, (stage, handles) in enumerate(zip(self.plan.stages, stage_workers)):
            runner = _StageRunner(
                index,
                stage,
                self.model,
                handles,
                self._queues[index],
                self._queues[index + 1],
                self.stats,
                self._stats_lock,
                self.recover,
            )
            runner.start()
            self._stages.append(runner)
            self._workers.extend(handles)
        self._started = True
        return self

    # ------------------------------------------------------------------
    def submit(self, x: np.ndarray) -> int:
        """Feed one input; returns its task id."""
        if not self._started:
            raise RuntimeError("pipeline not started")
        if x.shape != self.model.input_shape:
            raise ValueError(
                f"input shape {x.shape} != model input {self.model.input_shape}"
            )
        task_id = self._next_task
        self._next_task += 1
        now = time.perf_counter()
        if self._first_submit is None:
            self._first_submit = now
        self._submit_times[task_id] = now
        self._queues[0].put((task_id, np.ascontiguousarray(x, dtype=np.float32)))
        return task_id

    def collect(self, timeout_s: float = 120.0) -> Tuple[int, np.ndarray]:
        """Fetch one completed (task_id, output) from the final stage."""
        item = self._queues[-1].get(timeout=timeout_s)
        if item is _SENTINEL:
            for stage in self._stages:
                if stage.error is not None:
                    raise stage.error
            raise RuntimeError("pipeline terminated unexpectedly")
        task_id, features = item
        now = time.perf_counter()
        with self._stats_lock:
            self.stats.latencies.append(now - self._submit_times.pop(task_id))
            if self._first_submit is not None:
                self.stats.makespan = now - self._first_submit
        output = self._engine.run_head(features) if self.model.head else features
        return task_id, output

    def run_batch(
        self, inputs: "Sequence[np.ndarray]", timeout_s: float = 120.0
    ) -> Tuple[List[np.ndarray], RuntimeStats]:
        """Submit every input, gather every output (in submit order)."""
        ids = [self.submit(x) for x in inputs]
        outputs: "Dict[int, np.ndarray]" = {}
        for _ in ids:
            task_id, out = self.collect(timeout_s)
            outputs[task_id] = out
        return [outputs[i] for i in ids], self.stats

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._started:
            self._queues[0].put(_SENTINEL)
            for stage in self._stages:
                stage.join(timeout=10.0)
            for worker in self._workers:
                if worker.channel is not None:
                    try:
                        worker.channel.send(Shutdown())
                    except (TransportClosed, OSError):
                        pass
                    worker.channel.close()
            for worker in self._workers:
                worker.process.join(timeout=10.0)
                if worker.process.is_alive():
                    worker.process.terminate()

    def __enter__(self) -> "DistributedPipeline":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
