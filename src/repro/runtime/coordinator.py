"""Coordinator: drives a plan on real worker processes.

Implements the paper's Fig. 6 workflow over the shared runtime core:
the plan is compiled once into a :class:`~repro.runtime.program.PlanProgram`,
a :class:`TcpTransport` carries each stage's tiles to its worker
processes over framed TCP sockets, and each stage runs as a thread
calling the same :func:`~repro.runtime.core.execute_stage` path the
in-process and simulated backends use — so the distributed output is
bit-identical to theirs.  Stages overlap on different tasks — a real
inference pipeline, not a simulation.

Worker failure recovery (extension): if a worker dies mid-task, the
transport redistributes its strip among the survivors
(capacity-weighted), ships them new tile programs via
:class:`Reconfigure`, and the stage replays the task.
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.plan import PipelinePlan
from repro.models.graph import Model
from repro.nn.executor import Engine
from repro.nn.tiles import compile_block_paths_cached, compile_segment_cached
from repro.nn.weights import Weights, init_weights
from repro.partition.branches import concat_channel_blocks
from repro.partition.regions import Region
from repro.partition.strips import weighted_partition
from repro.runtime.core import StageTrace, TaskTiming, Transport, execute_stage
from repro.runtime.faults import RuntimeConfig, StageFailure
from repro.runtime.messages import (
    Hello,
    Reconfigure,
    Setup,
    Shutdown,
    TileResult,
    TileTask,
    WorkerError,
)
from repro.runtime.program import (
    PlanProgram,
    TaskSpec,
    compile_plan,
    task_weight_names,
)
from repro.runtime.trace import Tracer, coerce_tracer
from repro.runtime.transport import Channel, TransportClosed
from repro.runtime.worker import worker_main

# StageFailure moved to repro.runtime.faults; re-exported here for the
# existing import sites.
__all__ = ["DistributedPipeline", "RuntimeStats", "StageFailure", "TcpTransport"]

_SENTINEL = object()


@dataclass
class RuntimeStats:
    """Measured behaviour of a distributed run."""

    latencies: List[float] = field(default_factory=list)
    makespan: float = 0.0
    worker_compute_s: Dict[int, float] = field(default_factory=dict)
    recoveries: int = 0

    @property
    def avg_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def throughput(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return len(self.latencies) / self.makespan


@dataclass
class _WorkerHandle:
    worker_id: int
    process: mp.Process
    task: TaskSpec
    channel: Optional[Channel] = None
    alive: bool = True


class TcpTransport(Transport):
    """The framed-socket backend: one worker process per task.

    Conforms to the core :class:`~repro.runtime.core.Transport`
    protocol — :meth:`run_tasks` scatters :class:`TileTask` frames to
    the stage's workers and gathers :class:`TileResult` frames — and
    owns the failure-recovery state (per-stage epochs, survivor
    repartitioning).
    """

    name = "tcp"

    def __init__(
        self,
        model: Model,
        stats: RuntimeStats,
        stats_lock: threading.Lock,
    ) -> None:
        self.model = model
        self.stats = stats
        self.stats_lock = stats_lock
        self._handles: "List[List[_WorkerHandle]]" = []
        self._epochs: "List[int]" = []
        self._clock_epoch = time.perf_counter()
        self._pending_dead: "set" = set()
        self._pending_lock = threading.Lock()
        self._monitor: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()

    def open(self, program: PlanProgram) -> None:
        super().open(program)
        self._epochs = [0] * program.n_stages
        self._clock_epoch = time.perf_counter()

    def _now(self) -> float:
        return time.perf_counter() - self._clock_epoch

    def clock(self) -> float:
        return self._now()

    # -- heartbeats ----------------------------------------------------
    def start_heartbeat(self, interval_s: float) -> None:
        """Probe worker-process liveness every ``interval_s`` seconds.

        The monitor never mutates handles directly — it only flags
        worker ids in a pending set, which each stage thread applies
        (mark dead + repartition) at its next frame boundary.  That
        keeps channel use and repartitioning on the stage threads,
        where the epoch protocol already makes them safe.
        """
        if self._monitor is not None:
            return
        self._monitor_stop.clear()

        def probe() -> None:
            while not self._monitor_stop.wait(interval_s):
                with self._pending_lock:
                    for handle in self.all_handles():
                        if handle.alive and not handle.process.is_alive():
                            self._pending_dead.add(handle.worker_id)

        self._monitor = threading.Thread(
            target=probe, name="heartbeat", daemon=True
        )
        self._monitor.start()

    def stop_heartbeat(self) -> None:
        if self._monitor is not None:
            self._monitor_stop.set()
            self._monitor.join(timeout=5.0)
            self._monitor = None

    def apply_heartbeats(self, stage_index: int) -> bool:
        """Mark this stage's monitor-flagged workers dead; True if any."""
        with self._pending_lock:
            if not self._pending_dead:
                return False
            flagged = [
                h
                for h in self._handles[stage_index]
                if h.alive and h.worker_id in self._pending_dead
            ]
            for h in flagged:
                h.alive = False
                self._pending_dead.discard(h.worker_id)
        return bool(flagged)

    def bind_stage(self, stage_index: int, handles: "List[_WorkerHandle]") -> None:
        while len(self._handles) <= stage_index:
            self._handles.append([])
        self._handles[stage_index] = handles

    def alive_handles(self, stage_index: int) -> "List[_WorkerHandle]":
        return [h for h in self._handles[stage_index] if h.alive]

    def stage_tasks(self, stage_index: int) -> "Tuple[TaskSpec, ...]":
        handles = self.alive_handles(stage_index)
        if not handles:
            raise StageFailure(f"stage {stage_index}: no workers left")
        return tuple(h.task for h in handles)

    def run_tasks(
        self,
        stage_index: int,
        tiles: "Sequence[np.ndarray]",
        frame: int,
    ) -> "Tuple[List[np.ndarray], StageTrace]":
        handles = self.alive_handles(stage_index)
        epoch = self._epochs[stage_index]
        entry = self._now()
        send_spans = []
        for handle, tile in zip(handles, tiles):
            t0 = self._now()
            try:
                handle.channel.send(TileTask(frame, tile, epoch))
            except OSError:  # includes TransportClosed / broken pipes
                handle.alive = False
                raise TransportClosed(
                    f"worker {handle.worker_id} unreachable"
                ) from None
            send_spans.append((t0, self._now()))
        outs: "List[np.ndarray]" = []
        timings: "List[TaskTiming]" = []
        for handle, span in zip(handles, send_spans):
            while True:
                try:
                    message = handle.channel.recv()
                except TransportClosed:
                    handle.alive = False
                    raise
                if getattr(message, "epoch", epoch) < epoch:
                    continue  # stale result from before a repartition
                break
            recv_end = self._now()
            if isinstance(message, WorkerError):
                raise RuntimeError(
                    f"worker {message.worker_id} failed task "
                    f"{message.task_id}: {message.message}"
                )
            assert isinstance(message, TileResult)
            outs.append(message.tile)
            timings.append(
                TaskTiming(
                    send=span,
                    compute=(
                        max(span[1], recv_end - message.compute_s),
                        recv_end,
                    ),
                    recv=(recv_end, recv_end),
                )
            )
            with self.stats_lock:
                self.stats.worker_compute_s[handle.worker_id] = (
                    self.stats.worker_compute_s.get(handle.worker_id, 0.0)
                    + message.compute_s
                )
        return outs, StageTrace(entry, entry, self._now(), tuple(timings))

    # ------------------------------------------------------------------
    def repartition(self, stage_index: int) -> None:
        """Redistribute the stage partition over surviving workers."""
        survivors = self.alive_handles(stage_index)
        if not survivors:
            raise StageFailure(f"stage {stage_index}: no workers left")
        self._epochs[stage_index] += 1
        stage = self._program.stages[stage_index]
        if stage.branch:
            from repro.partition.branches import assign_paths_lpt, path_flops

            weights = path_flops(self.model, stage.start)
            groups = assign_paths_lpt(
                weights, [h.task.capacity for h in survivors]
            )
            for handle, group in zip(survivors, groups):
                if not group:
                    handle.alive = False
                    continue
                program = compile_block_paths_cached(
                    self.model, stage.start, tuple(sorted(group))
                )
                handle.task = TaskSpec(
                    handle.task.device_name,
                    handle.task.capacity,
                    program,
                    None,
                    tuple(concat_channel_blocks(self.model, stage.start, group)),
                    tuple(sorted(group)),
                )
                handle.channel.send(Reconfigure(program))
            with self.stats_lock:
                self.stats.recoveries += 1
            return
        _, h, w = stage.out_shape
        rows = weighted_partition(h, [hd.task.capacity for hd in survivors])
        for handle, iv in zip(survivors, rows):
            region = Region.from_bounds(iv.start, iv.end, 0, w)
            if region.empty:
                handle.alive = False  # nothing left for it to do
                continue
            program = compile_segment_cached(
                self.model, stage.start, stage.end, region
            )
            handle.task = TaskSpec(
                handle.task.device_name,
                handle.task.capacity,
                program,
                region,
                None,
            )
            handle.channel.send(Reconfigure(program))
        with self.stats_lock:
            self.stats.recoveries += 1

    def all_handles(self) -> "List[_WorkerHandle]":
        return [h for handles in self._handles for h in handles]

    def close(self) -> None:
        self.stop_heartbeat()
        for handle in self.all_handles():
            if handle.channel is not None:
                try:
                    handle.channel.send(Shutdown())
                except (TransportClosed, OSError):
                    pass
                handle.channel.close()
        for handle in self.all_handles():
            handle.process.join(timeout=10.0)
            if handle.process.is_alive():
                handle.process.terminate()


class _StageRunner(threading.Thread):
    """One pipeline stage: queue → shared core stage path → queue."""

    def __init__(
        self,
        index: int,
        program: PlanProgram,
        transport: TcpTransport,
        in_queue: "queue.Queue",
        out_queue: "queue.Queue",
        recover: bool,
        tracer: Optional[Tracer],
    ) -> None:
        super().__init__(name=f"stage-{index}", daemon=True)
        self.index = index
        self.program = program
        self.transport = transport
        self.in_queue = in_queue
        self.out_queue = out_queue
        self.recover = recover
        self.tracer = tracer
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        try:
            while True:
                item = self.in_queue.get()
                if item is _SENTINEL:
                    self.out_queue.put(_SENTINEL)
                    return
                task_id, feature_map = item
                output = self._process(task_id, feature_map)
                self.out_queue.put((task_id, output))
        except BaseException as exc:  # surface to the coordinator
            self.error = exc
            self.out_queue.put(_SENTINEL)

    def _process(self, task_id: int, feature_map: np.ndarray) -> np.ndarray:
        while True:
            # Apply deaths flagged by the heartbeat monitor before the
            # send would discover them the hard way (and desync a frame).
            if self.transport.apply_heartbeats(self.index):
                if not self.recover:
                    raise StageFailure(
                        f"stage {self.index}: worker died (heartbeat)"
                    )
                self.transport.repartition(self.index)
            try:
                return execute_stage(
                    self.transport,
                    self.program,
                    self.index,
                    feature_map,
                    task_id,
                    self.tracer,
                )
            except TransportClosed:
                if not self.recover:
                    raise StageFailure(
                        f"stage {self.index}: worker connection lost"
                    ) from None
                self.transport.repartition(self.index)


class DistributedPipeline:
    """Execute a :class:`PipelinePlan` on real OS processes.

    Usage::

        with DistributedPipeline(model, plan) as pipe:
            outputs, stats = pipe.run_batch(inputs)

    ``trace`` follows the shared contract (``Tracer | bool | None``,
    see :func:`~repro.runtime.trace.coerce_tracer`): per-frame
    :class:`~repro.runtime.trace.TraceEvent` records are available as
    ``pipe.trace`` after the run, on the same schema the in-process and
    simulated backends emit.

    A :class:`~repro.runtime.faults.RuntimeConfig` turns on the fault
    tolerance layer: heartbeat probing of worker processes, recv
    timeouts on worker channels, worker idle timeouts, and recovery
    (``config.recover`` supersedes the legacy ``recover`` flag).
    """

    def __init__(
        self,
        model: Model,
        plan: PipelinePlan,
        weights: Optional[Weights] = None,
        seed: int = 0,
        recover: bool = False,
        fail_after: "Optional[Dict[str, int]]" = None,
        connect_timeout_s: float = 30.0,
        trace=False,
        config: "Optional[RuntimeConfig]" = None,
    ) -> None:
        self.model = model
        self.plan = plan
        self.program = compile_plan(model, plan)
        self.weights = weights if weights is not None else init_weights(model, seed)
        self.config = config
        self.recover = config.recover if config is not None else recover
        self.fail_after = fail_after or {}
        self.connect_timeout_s = connect_timeout_s
        self.stats = RuntimeStats()
        self._stats_lock = threading.Lock()
        self._engine = Engine(model, self.weights)
        self._tracer = coerce_tracer(trace)
        self.transport = TcpTransport(model, self.stats, self._stats_lock)
        if config is not None:
            self.transport.configure(config)
        self._stages: "List[_StageRunner]" = []
        self._queues: "List[queue.Queue]" = []
        self._submit_times: "Dict[int, float]" = {}
        self._next_task = 0
        self._started = False
        self._closed = False
        self._first_submit: Optional[float] = None

    @property
    def trace(self):
        """Collected trace events (empty unless ``trace=True``)."""
        return self._tracer.events if self._tracer is not None else ()

    # ------------------------------------------------------------------
    def start(self) -> "DistributedPipeline":
        if self._started:
            return self
        self.transport.open(self.program)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        host, port = listener.getsockname()
        listener.listen(64)
        listener.settimeout(self.connect_timeout_s)

        # Spawn one worker process per compiled task.
        worker_id = 0
        idle_timeout = (
            self.config.worker_idle_timeout_s
            if self.config is not None
            else None
        )
        ctx = mp.get_context("fork")
        for stage in self.program.stages:
            handles = []
            for task in stage.tasks:
                fail_after = self.fail_after.get(task.device_name)
                process = ctx.Process(
                    target=worker_main,
                    args=(host, port, worker_id, fail_after, idle_timeout),
                    daemon=True,
                )
                process.start()
                handles.append(_WorkerHandle(worker_id, process, task))
                worker_id += 1
            self.transport.bind_stage(stage.index, handles)

        # Accept connections and match them to handles via Hello.
        by_id = {h.worker_id: h for h in self.transport.all_handles()}
        try:
            for _ in range(len(by_id)):
                conn, _addr = listener.accept()
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                channel = Channel(conn)
                hello = channel.recv()
                assert isinstance(hello, Hello)
                by_id[hello.worker_id].channel = channel
        finally:
            listener.close()

        # Ship setups: each worker gets its compiled program plus the
        # weights its segment touches.
        for stage in self.program.stages:
            if stage.branch:
                # Ship the whole block's weights: a failure may later
                # reassign any path to any surviving worker, and
                # Reconfigure does not carry parameters.
                unit = self.model.units[stage.start]
                block_names = {
                    layer.name for p in unit.paths for layer in p
                }
                subset = {
                    name: params
                    for name, params in self.weights.items()
                    if name in block_names
                }
                for handle in self.transport.alive_handles(stage.index):
                    handle.channel.send(
                        Setup(self.model, handle.task.program, subset)
                    )
                continue
            for handle in self.transport.alive_handles(stage.index):
                names = task_weight_names(handle.task.program)
                subset = {
                    name: params
                    for name, params in self.weights.items()
                    if name in names
                }
                handle.channel.send(
                    Setup(self.model, handle.task.program, subset)
                )

        # Fault-tolerance plumbing: bound worker recvs and start the
        # liveness monitor (the handshake above ran unbounded so slow
        # weight shipping never trips the timeout).
        if self.config is not None:
            if self.config.recv_timeout_s is not None:
                for handle in self.transport.all_handles():
                    handle.channel.settimeout(self.config.recv_timeout_s)
            self.transport.start_heartbeat(self.config.heartbeat_interval_s)

        # Wire queues and stage threads.
        self._queues = [queue.Queue() for _ in range(self.program.n_stages + 1)]
        for index in range(self.program.n_stages):
            runner = _StageRunner(
                index,
                self.program,
                self.transport,
                self._queues[index],
                self._queues[index + 1],
                self.recover,
                self._tracer,
            )
            runner.start()
            self._stages.append(runner)
        self._started = True
        return self

    # ------------------------------------------------------------------
    def submit(self, x: np.ndarray) -> int:
        """Feed one input; returns its task id."""
        if not self._started:
            raise RuntimeError("pipeline not started")
        if x.shape != self.model.input_shape:
            raise ValueError(
                f"input shape {x.shape} != model input {self.model.input_shape}"
            )
        task_id = self._next_task
        self._next_task += 1
        now = time.perf_counter()
        if self._first_submit is None:
            self._first_submit = now
        self._submit_times[task_id] = now
        self._queues[0].put((task_id, np.ascontiguousarray(x, dtype=np.float32)))
        return task_id

    def collect(self, timeout_s: float = 120.0) -> Tuple[int, np.ndarray]:
        """Fetch one completed (task_id, output) from the final stage."""
        item = self._queues[-1].get(timeout=timeout_s)
        if item is _SENTINEL:
            for stage in self._stages:
                if stage.error is not None:
                    raise stage.error
            raise RuntimeError("pipeline terminated unexpectedly")
        task_id, features = item
        now = time.perf_counter()
        with self._stats_lock:
            self.stats.latencies.append(now - self._submit_times.pop(task_id))
            if self._first_submit is not None:
                self.stats.makespan = now - self._first_submit
        output = self._engine.run_head(features) if self.model.head else features
        return task_id, output

    def run_batch(
        self, inputs: "Sequence[np.ndarray]", timeout_s: float = 120.0
    ) -> Tuple[List[np.ndarray], RuntimeStats]:
        """Submit every input, gather every output (in submit order)."""
        ids = [self.submit(x) for x in inputs]
        outputs: "Dict[int, np.ndarray]" = {}
        for _ in ids:
            task_id, out = self.collect(timeout_s)
            outputs[task_id] = out
        return [outputs[i] for i in ids], self.stats

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._started:
            self._queues[0].put(_SENTINEL)
            for stage in self._stages:
                stage.join(timeout=10.0)
            self.transport.close()

    def __enter__(self) -> "DistributedPipeline":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
