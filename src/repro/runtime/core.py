"""The shared runtime core: one stage-execution path, pluggable transports.

Every executor in the repo drives frames through the same three steps —
split the stage input into per-device tiles, run each task's compiled
segment, stitch the output map — and differ only in *where* tasks run
and *what clock* stamps the trace.  :func:`execute_stage` owns the
split/stitch and trace emission; a :class:`Transport` supplies task
execution and timestamps:

========================  =============================  ====================
backend                   tasks run on                   clock
========================  =============================  ====================
:class:`InProcTransport`  the shared thread pool         wall (perf_counter)
``TcpTransport``          worker processes over TCP      wall (perf_counter)
``ShmTransport``          worker processes, tensors in   wall (perf_counter)
                          shared-memory slot rings
:class:`SimTransport`     inline, serially               virtual (Eq. 9 cost)
========================  =============================  ====================

Because tiles, kernels and stitching are shared, all three produce
bit-identical frame outputs, and their canonical traces (timestamp-free
event sequences) are equal — the exactness gate that lets simulated
timelines stand in for live ones.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cost.tables import batched_service
from repro.nn import parallel
from repro.nn.executor import Engine
from repro.nn.tiles import run_segment
from repro.runtime.faults import (
    DeviceDead,
    FaultSchedule,
    RuntimeConfig,
    StageFailure,
    TransientTaskError,
)
from repro.runtime.program import (
    PlanProgram,
    StageProgram,
    TaskSpec,
    compile_plan,
    repartition_stage,
    split_stage,
    stack_frames,
    stitch_stage,
    unstack_frames,
)
from repro.runtime.timing import PlanTiming, plan_timing
from repro.runtime.trace import TraceEvent, Tracer

__all__ = [
    "TaskTiming",
    "StageTrace",
    "Transport",
    "InProcTransport",
    "SimTransport",
    "emit_stage_trace",
    "execute_stage",
    "execute_stage_batch",
    "PipelineSession",
]


@dataclass(frozen=True)
class TaskTiming:
    """Transport-reported ``(start, end)`` spans for one task's phases."""

    send: Tuple[float, float]
    compute: Tuple[float, float]
    recv: Tuple[float, float]


@dataclass(frozen=True)
class StageTrace:
    """Transport-reported timing of one stage serving one frame."""

    entry: float  # frame arrived at the stage
    start: float  # stage began serving it (entry + queueing)
    exit: float  # stage finished
    tasks: Tuple[TaskTiming, ...]


class Transport(ABC):
    """Carries one stage's tiles to compute sites and back.

    A transport is bound to a :class:`PlanProgram` via :meth:`open`.
    :meth:`run_tasks` receives the per-task input tiles (split by the
    core, in task order) and returns the per-task output tiles plus the
    stage's :class:`StageTrace` under this backend's clock.

    The base class also owns the backend-agnostic half of the
    fault-tolerance state: a :class:`~repro.runtime.faults.RuntimeConfig`
    (via :meth:`configure`), the set of devices declared dead, per-stage
    task-set overrides installed by :meth:`repartition`, and the clock /
    backoff hooks (:meth:`clock`, :meth:`penalty`) the recovery loop in
    :func:`execute_stage` stamps its events with.
    """

    name: str = "?"
    #: Whether this backend's :meth:`clock` is wall time.  Wall-clock
    #: transports support genuinely concurrent stage execution (the
    #: threaded serving path); virtual-clock backends are driven
    #: serially and stamp pipelined timestamps analytically.
    wall_clock: bool = True
    #: The model, when the backend can recompile tiles (rebalance).
    model = None
    _config: "Optional[RuntimeConfig]" = None

    def open(self, program: PlanProgram) -> None:
        self._program = program
        self._overrides: "dict" = {}
        if not getattr(self, "_fleet_shared", False):
            # Tenant views (open_tenant) arrive with the fleet-wide
            # dead-device set pre-installed; opening must not fork it.
            self._dead: "set" = set()
            self._dead_lock = threading.Lock()

    def close(self) -> None:  # pragma: no cover - default no-op
        pass

    def configure(self, config: "Optional[RuntimeConfig]") -> None:
        """Install the fault-tolerance configuration."""
        self._config = config

    @property
    def config(self) -> "Optional[RuntimeConfig]":
        return self._config

    def begin_frame(self, frame: int, at: Optional[float] = None) -> None:
        """Announce a new frame; ``at`` is its (virtual) submit time."""

    def current_stage(self, stage_index: int) -> StageProgram:
        """The stage's current program (post-recovery override, if any)."""
        override = getattr(self, "_overrides", {}).get(stage_index)
        if override is not None:
            return override
        return self._program.stages[stage_index]

    def stage_tasks(self, stage_index: int) -> "Tuple[TaskSpec, ...]":
        """The stage's *current* task set (overridden after recovery)."""
        return self.current_stage(stage_index).tasks

    @abstractmethod
    def run_tasks(
        self,
        stage_index: int,
        tiles: "Sequence[np.ndarray]",
        frame: int,
    ) -> "Tuple[List[np.ndarray], StageTrace]":
        """Execute the stage's tasks on their input tiles."""

    # -- failure detection & recovery ----------------------------------
    def clock(self) -> float:
        """This backend's current time (wall or virtual)."""
        return 0.0

    def penalty(self, seconds: float) -> None:
        """Charge a backoff wait to this backend's clock (default: no-op;
        wall-clock backends sleep, the simulated backend advances its
        virtual clock)."""

    def dead_devices(self) -> "frozenset":
        return frozenset(getattr(self, "_dead", ()))

    def mark_dead(self, device: str) -> bool:
        """Declare a device dead; True the first time it is declared.

        Locked: with frames in flight, concurrent stage threads can
        discover the same death and must not both report it.
        """
        with self._dead_lock:
            if device in self._dead:
                return False
            self._dead.add(device)
            return True

    def needs_repartition(self, stage_index: int) -> bool:
        """Does the stage's current task set reference a dead device?"""
        if not getattr(self, "_dead", None):
            return False
        return any(
            t.device_name in self._dead
            for t in self.stage_tasks(stage_index)
        )

    def repartition(self, stage_index: int) -> None:
        """Rebuild the stage's task set without its dead devices."""
        policy = self._config.repartition if self._config else "migrate"
        self._overrides[stage_index] = repartition_stage(
            self.model, self.current_stage(stage_index), self._dead, policy
        )

    def capacity_lost(self) -> float:
        """Fraction of the program's device capacity now dead."""
        dead = getattr(self, "_dead", None)
        if not dead:
            return 0.0
        capacities: "dict" = {}
        for stage in self._program.stages:
            for task in stage.tasks:
                capacities.setdefault(task.device_name, task.capacity)
        total = sum(capacities.values())
        if total <= 0:
            return 0.0
        return sum(c for n, c in capacities.items() if n in dead) / total

    def rebind(self, program: PlanProgram) -> None:
        """Adopt a new program mid-session (churn re-plan), keeping the
        clock and the dead-device set."""
        self._program = program
        self._overrides.clear()

    def backpressure(self) -> float:
        """How loaded the transport's internal buffering is, in [0, 1].

        ``0.0`` means admission can proceed freely; ``1.0`` means the
        transport cannot absorb another frame without blocking.  The
        shared-memory backend reports its slot-ring occupancy here; the
        serving layer's admission control consults it (a full ring
        sheds instead of queueing a frame that would stall a stage).
        """
        return 0.0

    # -- multi-tenant views --------------------------------------------
    def open_tenant(self, engine: "Optional[Engine]" = None) -> "Transport":
        """A per-tenant view of this transport for fleet serving.

        Fleet serving runs several concurrent programs over one shared
        backend.  Each tenant gets its own *view* — a fresh transport of
        the same backend class, returned **unopened** so the tenant's
        session/server binds it to that tenant's program through the
        normal ``configure() → open()`` flow — while the failure state
        is fleet-wide: every view shares this parent's dead-device set
        and its lock (preserved across the view's ``open``), so a death
        discovered while serving one tenant immediately makes
        ``needs_repartition`` true for every other tenant whose plan
        touches that device.

        ``engine`` supplies the tenant's model engine when it differs
        from the parent's (multi-model fleets).  The parent acts as the
        factory and shared-state holder; it need not be opened itself.
        """
        if not hasattr(self, "_dead"):
            # Parent used purely as a factory: seed the shared fleet
            # state without requiring an open() on the parent itself.
            self._dead = set()
            self._dead_lock = threading.Lock()
        if not hasattr(self, "_tenant_views"):
            self._tenant_views: "List[Transport]" = []
        view = self._tenant_view(engine)
        view.configure(self._config)
        view._dead = self._dead
        view._dead_lock = self._dead_lock
        view._fleet_shared = True
        self._tenant_views.append(view)
        return view

    def _tenant_view(self, engine: "Optional[Engine]") -> "Transport":
        """Backend hook: a fresh unbound transport for one tenant."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support tenant views"
        )

    @property
    def tenant_views(self) -> "Tuple[Transport, ...]":
        return tuple(getattr(self, "_tenant_views", ()))

    def close_tenants(self) -> None:
        for view in getattr(self, "_tenant_views", ()):
            view.close()
        self._tenant_views = []


def execute_stage(
    transport: Transport,
    program: PlanProgram,
    stage_index: int,
    x: np.ndarray,
    frame: int,
    tracer: Optional[Tracer] = None,
    config: "Optional[RuntimeConfig]" = None,
) -> np.ndarray:
    """Run one stage of one frame through a transport.

    The single split → compute → stitch path shared by every backend.
    Trace events are emitted in canonical order — enqueue, then per
    task (in task order) send/compute/recv — so event *ordering* is
    deterministic for any backend; only timestamps differ.

    With a :class:`~repro.runtime.faults.RuntimeConfig` the call is
    fault-tolerant: transient task failures retry with bounded
    exponential backoff (``retry`` events), a dead device triggers a
    stage repartition and a replay of the frame from this stage
    boundary (``device_dead`` / ``frame_replayed`` events).  Without a
    config (the default) failures propagate untouched — the exact
    legacy path.
    """
    return _execute_stage(
        transport, program, stage_index, x, (frame,), tracer, config
    )


def execute_stage_batch(
    transport: Transport,
    program: PlanProgram,
    stage_index: int,
    x: np.ndarray,
    frames: "Sequence[int]",
    tracer: Optional[Tracer] = None,
    config: "Optional[RuntimeConfig]" = None,
) -> np.ndarray:
    """Run one stage of a *cross-frame batch* through a transport.

    ``x`` is the ``(C, B, H, W)`` stack of the batch members' stage
    inputs (:func:`~repro.runtime.program.stack_frames`); ``frames``
    their frame ids in stack order.  The same split → compute → stitch
    path as :func:`execute_stage` runs once over the batched tiles — one
    stacked im2col panel and GEMM pass per layer — and returns the
    batched stage output.  Per-frame slices are bit-identical to ``B``
    separate :func:`execute_stage` calls.

    Trace events replicate per member frame (each frame keeps its
    canonical enqueue/send/compute/recv sequence; tile bytes split
    evenly), so per-frame canonical traces stay comparable with
    unbatched runs.  The fault ladder treats the batch as a unit:
    retries, repartitions and replays apply to every member together,
    and transports key fault injection by the batch's lead frame.
    """
    if x.ndim != 4:
        raise ValueError(f"batched stage input must be (C, B, H, W), got {x.shape}")
    if x.shape[1] != len(frames):
        raise ValueError(
            f"batch of {x.shape[1]} maps does not match {len(frames)} frame ids"
        )
    if not frames:
        raise ValueError("batch needs at least one frame")
    return _execute_stage(
        transport, program, stage_index, x, tuple(frames), tracer, config
    )


def _execute_stage(
    transport: Transport,
    program: PlanProgram,
    stage_index: int,
    x: np.ndarray,
    frames: "Tuple[int, ...]",
    tracer: Optional[Tracer],
    config: "Optional[RuntimeConfig]",
) -> np.ndarray:
    """The shared single-frame / batched fault ladder."""
    frame = frames[0]
    if config is None:
        return _attempt_stage(transport, program, stage_index, x, frames, tracer)
    attempt = 0
    while True:
        try:
            if transport.needs_repartition(stage_index):
                # A heartbeat (or an earlier stage) already declared a
                # death; repair proactively instead of failing the send.
                transport.repartition(stage_index)
            return _attempt_stage(
                transport, program, stage_index, x, frames, tracer
            )
        except TransientTaskError as exc:
            if not config.recover or attempt >= config.max_retries:
                raise StageFailure(
                    f"stage {stage_index}: {exc} "
                    f"(after {attempt} retries)"
                ) from exc
            now = transport.clock()
            if tracer is not None:
                tracer.emit(
                    TraceEvent("retry", frame, stage_index, exc.device, now, now)
                )
            transport.penalty(config.backoff(attempt))
            attempt += 1
        except DeviceDead as exc:
            if not config.recover:
                raise
            newly_dead = transport.mark_dead(exc.device)
            now = transport.clock()
            if tracer is not None and newly_dead:
                tracer.emit(
                    TraceEvent(
                        "device_dead", frame, stage_index, exc.device, now, now
                    )
                )
            transport.repartition(stage_index)
            if tracer is not None:
                now = transport.clock()
                tracer.emit(
                    TraceEvent(
                        "frame_replayed", frame, stage_index, exc.device,
                        now, now,
                    )
                )
            attempt = 0  # a fresh task set gets a fresh retry budget


def _attempt_stage(
    transport: Transport,
    program: PlanProgram,
    stage_index: int,
    x: np.ndarray,
    frames: "Tuple[int, ...]",
    tracer: Optional[Tracer] = None,
) -> np.ndarray:
    """One split → compute → stitch attempt (the legacy hot path).

    ``frames`` has one id for a single-frame map, several for a batched
    ``(C, B, H, W)`` input — the split/compute/stitch calls are
    identical either way; only trace emission fans out per frame.
    """
    stage = transport.current_stage(stage_index)
    tasks = transport.stage_tasks(stage_index)
    tiles = split_stage(tasks, x)
    outs, st = transport.run_tasks(stage_index, tiles, frames[0])
    emit_stage_trace(tracer, frames, stage_index, tasks, tiles, outs, st)
    return stitch_stage(stage, tasks, outs)


def emit_stage_trace(
    tracer: Optional[Tracer],
    frames: "Tuple[int, ...]",
    stage_index: int,
    tasks: "Sequence[TaskSpec]",
    tiles: "Sequence[np.ndarray]",
    outs: "Sequence[np.ndarray]",
    st: StageTrace,
) -> None:
    """Emit one stage attempt's events in canonical order.

    Shared by :func:`_attempt_stage` and the event-driven coordinator,
    so every backend — including one that gathers results out of order
    off a selector — produces the same timestamp-free event sequence:
    enqueue, then per task (in task order) send/compute/recv.
    """
    if tracer is None:
        return
    b = len(frames)
    events = []
    for frame in frames:
        events.append(
            TraceEvent("enqueue", frame, stage_index, "", st.entry, st.start)
        )
        for task, tile, out, tt in zip(tasks, tiles, outs, st.tasks):
            events.append(
                TraceEvent(
                    "send", frame, stage_index, task.device_name,
                    tt.send[0], tt.send[1], tile.nbytes // b,
                )
            )
            events.append(
                TraceEvent(
                    "compute", frame, stage_index, task.device_name,
                    tt.compute[0], tt.compute[1],
                )
            )
            events.append(
                TraceEvent(
                    "recv", frame, stage_index, task.device_name,
                    tt.recv[0], tt.recv[1], out.nbytes // b,
                )
            )
    tracer.extend(events)


class InProcTransport(Transport):
    """Tasks on the shared thread pool, wall clock — the local executor.

    Per-device tiles genuinely overlap on a multi-core host (numpy's
    kernels release the GIL); with ``REPRO_THREADS=1`` they run
    serially and bit-identically.
    """

    name = "inproc"

    def __init__(
        self,
        engine: Engine,
        faults: "Optional[FaultSchedule]" = None,
    ) -> None:
        self.engine = engine
        self.model = engine.model
        self.faults = faults
        self._injector = None
        self._epoch = time.perf_counter()

    def open(self, program: PlanProgram) -> None:
        if program.model_name != self.engine.model.name:
            raise ValueError(
                f"program is for {program.model_name!r}, engine runs "
                f"{self.engine.model.name!r}"
            )
        super().open(program)
        self._injector = self.faults.start() if self.faults else None
        self._epoch = time.perf_counter()

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _tenant_view(self, engine: "Optional[Engine]") -> "InProcTransport":
        return InProcTransport(engine or self.engine, self.faults)

    def clock(self) -> float:
        return self._now()

    def penalty(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def run_tasks(
        self,
        stage_index: int,
        tiles: "Sequence[np.ndarray]",
        frame: int,
    ) -> "Tuple[List[np.ndarray], StageTrace]":
        tasks = self.stage_tasks(stage_index)
        entry = self._now()
        spans: "List[Optional[Tuple[float, float]]]" = [None] * len(tasks)
        injector = self._injector

        def run_task(i: int, task: TaskSpec, tile: np.ndarray) -> np.ndarray:
            t0 = self._now()
            if injector is not None:
                if injector.crashed(task.device_name, frame):
                    raise DeviceDead(task.device_name)
                if injector.take_link_failure(task.device_name, frame):
                    raise TransientTaskError(
                        task.device_name, "send failed (flaky link)"
                    )
            out = run_segment(self.engine, task.program, tile)
            if injector is not None:
                delay = injector.compute_delay(task.device_name, frame)
                if delay > 0:
                    time.sleep(delay)
                if injector.take_drop(task.device_name, frame):
                    raise TransientTaskError(
                        task.device_name, "result dropped"
                    )
            spans[i] = (t0, self._now())
            return out

        outs = parallel.run_parallel(
            [
                lambda i=i, task=task, tile=tile: run_task(i, task, tile)
                for i, (task, tile) in enumerate(zip(tasks, tiles))
            ]
        )
        exit_ = self._now()
        timings = tuple(
            TaskTiming(send=(entry, entry), compute=spans[i], recv=(exit_, exit_))
            for i in range(len(tasks))
        )
        return outs, StageTrace(entry, entry, exit_, timings)


def _zero_tile(
    task: TaskSpec, stage: StageProgram, batch: int = 0
) -> np.ndarray:
    """A correctly shaped all-zeros output tile (``compute=False`` path).

    Strip tasks produce ``(C_out, region_h, region_w)``; branch tasks
    span the full map spatially and need enough channels to satisfy
    their copy list.  ``batch > 0`` produces the batched
    ``(C_out, batch, h, w)`` shape instead.
    """
    h = task.program.out_region.height
    w = task.program.out_region.width
    if task.channel_blocks is not None:
        channels = max(t_hi for (_, t_hi, _, _) in task.channel_blocks)
    else:
        channels = stage.out_shape[0]
    if batch > 0:
        return np.zeros((channels, batch, h, w), dtype=np.float32)
    return np.zeros((channels, h, w), dtype=np.float32)


class SimTransport(Transport):
    """Tasks inline with a virtual clock — real tensors, analytic time.

    Replaces the physical testbed: frames are actually computed (so
    outputs are bit-identical to the live backends), but every
    timestamp comes from the Eq. 9 stage-cost model through the shared
    :func:`~repro.runtime.timing.plan_timing` tables.  Stages are FIFO
    servers: stage ``s`` starts a frame at
    ``max(frame ready, stage free)``, exactly the event simulator's
    deterministic-service recurrence, so a trace from here is the
    frame-level expansion of a :func:`simulate_plan` run.  Exclusive
    plans serialise every stage through one server token.

    ``compute=False`` turns the transport into a pure virtual-clock
    server: kernels are skipped and every output tile is zeros of the
    correct shape.  Timestamps, traces and queueing are unchanged (the
    clock is analytic either way), which makes long serving benchmarks
    cheap; anything that checks tensor values must keep the default
    ``compute=True``.

    Batched ``(C, B, H, W)`` tiles charge the B-dependent service
    estimate :func:`repro.cost.tables.batched_service` — linear in B on
    the wire, partially amortised (``batch_amortized``) on compute.  A
    batch of one charges exactly the single-frame ``sc.total``, so
    every existing B=1 timestamp is preserved bit-for-bit.
    """

    name = "sim"
    wall_clock = False

    def __init__(
        self,
        engine: Engine,
        network,
        options=None,
        faults: "Optional[FaultSchedule]" = None,
        compute: bool = True,
        batch_amortized: "Optional[float]" = None,
    ) -> None:
        from repro.cost.tables import BATCH_AMORTIZED_FRACTION

        self.engine = engine
        self.model = engine.model
        self.network = network
        self.options = options
        self.faults = faults
        self.compute = compute
        self.batch_amortized = (
            BATCH_AMORTIZED_FRACTION if batch_amortized is None else batch_amortized
        )
        if not 0.0 <= self.batch_amortized <= 1.0:
            raise ValueError(
                f"batch_amortized must be in [0, 1], got {self.batch_amortized}"
            )
        self._injector = None
        self.timing: Optional[PlanTiming] = None
        self._stage_free: "List[float]" = []
        self._exclusive_free = 0.0
        self._frame_ready = 0.0
        self._last_submit = 0.0
        self._virtual_now = 0.0

    def open(self, program: PlanProgram) -> None:
        if program.model_name != self.engine.model.name:
            raise ValueError(
                f"program is for {program.model_name!r}, engine runs "
                f"{self.engine.model.name!r}"
            )
        super().open(program)
        self._injector = self.faults.start() if self.faults else None
        self.timing = plan_timing(
            self.engine.model, program.plan, self.network, self.options
        )
        self._stage_free = [0.0] * program.n_stages
        self._exclusive_free = 0.0
        self._frame_ready = 0.0
        self._last_submit = 0.0
        self._virtual_now = 0.0

    def _tenant_view(self, engine: "Optional[Engine]") -> "SimTransport":
        # Each tenant keeps its own virtual stage servers: contention
        # is modelled up front by the scheduler's occupancy-scaled
        # capacities, not by interleaving tenants on one clock.
        return SimTransport(
            engine or self.engine,
            self.network,
            self.options,
            self.faults,
            self.compute,
            self.batch_amortized,
        )

    @property
    def now(self) -> float:
        """The virtual clock: completion time of the latest work."""
        return self._virtual_now

    @property
    def frame_completion(self) -> float:
        """Virtual completion time of the most recently finished work —
        after a frame's last stage this is that frame's exit time."""
        return self._frame_ready

    def clock(self) -> float:
        return max(self._virtual_now, self._frame_ready)

    def penalty(self, seconds: float) -> None:
        """Backoff costs virtual time, never wall time."""
        if seconds > 0:
            self._frame_ready += seconds
            self._virtual_now = max(self._virtual_now, self._frame_ready)

    def rebind(self, program: PlanProgram) -> None:
        """Adopt a re-planned program: rebuild the timing tables and
        start the new pipeline's servers at the current virtual time."""
        super().rebind(program)
        self.timing = plan_timing(
            self.engine.model, program.plan, self.network, self.options
        )
        floor = max(self._virtual_now, self._frame_ready)
        self._stage_free = [floor] * program.n_stages
        self._exclusive_free = floor

    def begin_frame(self, frame: int, at: Optional[float] = None) -> None:
        if at is None:
            at = self._last_submit  # back-to-back submission
        if at < self._last_submit:
            raise ValueError("frames must be submitted in time order")
        self._last_submit = at
        self._frame_ready = at

    def stage_free_time(self, stage_index: int) -> float:
        """When stage ``stage_index``'s server next frees up (the
        exclusive token's free time for one-stage-scheme plans).  The
        analytic batcher uses this to decide how many queued frames a
        forming batch can absorb before the server would go idle."""
        program = getattr(self, "_program", None)
        if program is not None and program.mode == "exclusive":
            return self._exclusive_free
        if not self._stage_free:  # not opened yet: everything is idle
            return 0.0
        return self._stage_free[stage_index]

    def run_tasks(
        self,
        stage_index: int,
        tiles: "Sequence[np.ndarray]",
        frame: int,
    ) -> "Tuple[List[np.ndarray], StageTrace]":
        assert self.timing is not None, "transport not opened"
        tasks = self.stage_tasks(stage_index)
        sc = self.timing.cost.stage_costs[stage_index]
        by_device = {dc.device.name: dc for dc in sc.devices}
        entry = self._frame_ready
        if self._program.mode == "exclusive":
            start = max(entry, self._exclusive_free)
        else:
            start = max(entry, self._stage_free[stage_index])
        stage = self.current_stage(stage_index)
        batch = (
            tiles[0].shape[1] if tiles and tiles[0].ndim == 4 else 1
        )
        injector = self._injector
        outs = []
        delays = []
        for task, tile in zip(tasks, tiles):
            if injector is not None:
                if injector.crashed(task.device_name, frame):
                    raise DeviceDead(task.device_name)
                if injector.take_link_failure(task.device_name, frame):
                    raise TransientTaskError(
                        task.device_name, "send failed (flaky link)"
                    )
            if self.compute:
                outs.append(run_segment(self.engine, task.program, tile))
            else:
                outs.append(
                    _zero_tile(task, stage, batch if tile.ndim == 4 else 0)
                )
            if injector is not None:
                if injector.take_drop(task.device_name, frame):
                    raise TransientTaskError(
                        task.device_name, "result dropped"
                    )
                delays.append(
                    injector.compute_delay(task.device_name, frame)
                )
            else:
                delays.append(0.0)
        # An injected compute delay stretches the straggler's span and
        # therefore the whole stage's virtual service time.
        stage_delay = max(delays) if delays else 0.0
        if batch == 1:
            service = sc.total  # exact single-frame charge, bit-compat
            comp_scale = 1.0
        else:
            service = batched_service(
                sc.t_comm,
                sc.t_comp + sc.t_head,
                batch,
                self.batch_amortized,
            )
            comp_scale = self.batch_amortized + batch * (
                1.0 - self.batch_amortized
            )
        timings = []
        for task, delay in zip(tasks, delays):
            dc = by_device.get(task.device_name)
            t_comm = (dc.t_comm if dc is not None else 0.0) * batch
            t_comp = (dc.t_comp if dc is not None else 0.0) * comp_scale
            send_end = start + t_comm
            timings.append(
                TaskTiming(
                    send=(start, send_end),
                    compute=(send_end, send_end + t_comp + delay),
                    recv=(
                        start + service + stage_delay,
                        start + service + stage_delay,
                    ),
                )
            )
        exit_ = start + service + stage_delay
        if self._program.mode == "exclusive":
            self._exclusive_free = exit_
        else:
            self._stage_free[stage_index] = exit_
        self._frame_ready = exit_
        self._virtual_now = max(self._virtual_now, exit_)
        return outs, StageTrace(entry, start, exit_, tuple(timings))


class PipelineSession:
    """Drives frames through a :class:`PlanProgram` over any transport.

    The one plan-walking loop: stages in order, each via
    :func:`execute_stage`.  Construct from a compiled program or let
    :meth:`from_plan` compile one.

    With a :class:`~repro.runtime.faults.RuntimeConfig` the session is
    fault-tolerant (see :func:`execute_stage`); with a ``replanner`` —
    e.g. :func:`~repro.runtime.faults.churn_replanner` — it also reacts
    to *churn*: at each frame boundary, once the dead devices' capacity
    share exceeds ``config.replan_threshold``, the replanner supplies a
    fresh program over the survivors (``replan`` event) or a
    single-device fallback (``degraded`` event) and the transport is
    rebound to it.
    """

    def __init__(
        self,
        program: PlanProgram,
        transport: Transport,
        tracer: Optional[Tracer] = None,
        config: "Optional[RuntimeConfig]" = None,
        replanner=None,
    ) -> None:
        self.program = program
        self.transport = transport
        self.tracer = tracer
        self.config = config
        self.replanner = replanner
        if config is not None:
            transport.configure(config)
        transport.open(program)
        self._next_frame = 0
        self._replanned_for: "frozenset" = frozenset()

    @classmethod
    def from_plan(
        cls,
        model,
        plan,
        transport: Transport,
        tracer: Optional[Tracer] = None,
        config: "Optional[RuntimeConfig]" = None,
        replanner=None,
    ) -> "PipelineSession":
        return cls(
            compile_plan(model, plan), transport, tracer, config, replanner
        )

    def _can_replan(self) -> bool:
        return (
            self.config is not None
            and self.config.recover
            and self.replanner is not None
        )

    def _adopt_replan(self, frame: int) -> bool:
        """Ask the replanner for a fresh program; True if one was adopted.

        Only consults it when the dead-device set changed since the
        last adoption — the guarantee that a failing plan is never
        retried unchanged.
        """
        dead = self.transport.dead_devices()
        if not dead or dead == self._replanned_for:
            return False
        result = self.replanner(dead)
        self._replanned_for = dead
        if result is None:
            return False
        program, kind = result
        if self.tracer is not None:
            now = self.transport.clock()
            tag = ",".join(sorted(dead))
            self.tracer.emit(TraceEvent(kind, frame, 0, tag, now, now))
        self.transport.rebind(program)
        self.program = program
        return True

    def _maybe_replan(self) -> None:
        """Adopt a fresh plan when churn ate too much capacity."""
        if not self._can_replan():
            return
        if self.transport.capacity_lost() <= self.config.replan_threshold:
            return
        self._adopt_replan(self._next_frame)

    def run_frame(
        self, x: np.ndarray, at: Optional[float] = None
    ) -> np.ndarray:
        """Run one frame through every stage; returns the feature map.

        A :class:`~repro.runtime.faults.StageFailure` (a stage lost
        every device) escalates past the threshold check: the session
        force-replans over whatever survives and replays the frame from
        its input; without a replanner (or with nothing new dead) it
        propagates.
        """
        self._maybe_replan()
        frame = self._next_frame
        self._next_frame += 1
        x0 = np.ascontiguousarray(x, dtype=np.float32)
        while True:
            self.transport.begin_frame(frame, at)
            out = x0
            try:
                for index in range(self.program.n_stages):
                    out = execute_stage(
                        self.transport, self.program, index, out, frame,
                        self.tracer, self.config,
                    )
                return out
            except StageFailure:
                if not self._can_replan() or not self._adopt_replan(frame):
                    raise

    def run_batch(
        self,
        frames: "Sequence[np.ndarray]",
        arrivals: "Optional[Sequence[float]]" = None,
    ) -> "List[np.ndarray]":
        """Run frames in order; ``arrivals`` gives virtual submit times."""
        if arrivals is not None and len(arrivals) != len(frames):
            raise ValueError("arrivals must align one-to-one with frames")
        return [
            self.run_frame(x, arrivals[i] if arrivals is not None else None)
            for i, x in enumerate(frames)
        ]

    def run_stacked(
        self, frames: "Sequence[np.ndarray]", at: Optional[float] = None
    ) -> "List[np.ndarray]":
        """Run a cross-frame batch as one unit through every stage.

        The frames are stacked into one ``(C, B, H, W)`` input, walk the
        pipeline via :func:`execute_stage_batch` (one batched kernel
        pass per stage) and come back as per-frame maps bit-identical
        to ``B`` separate :meth:`run_frame` calls.  A single frame takes
        the exact :meth:`run_frame` path.  The fault ladder applies to
        the batch as a unit: a :class:`StageFailure` replans and replays
        all ``B`` frames together.
        """
        if not frames:
            raise ValueError("cannot run an empty batch")
        if len(frames) == 1:
            return [self.run_frame(frames[0], at)]
        self._maybe_replan()
        base = self._next_frame
        ids = tuple(range(base, base + len(frames)))
        self._next_frame += len(frames)
        x0 = stack_frames(frames)
        while True:
            self.transport.begin_frame(ids[0], at)
            out = x0
            try:
                for index in range(self.program.n_stages):
                    out = execute_stage_batch(
                        self.transport, self.program, index, out, ids,
                        self.tracer, self.config,
                    )
                return unstack_frames(out)
            except StageFailure:
                if not self._can_replan() or not self._adopt_replan(ids[0]):
                    raise

    def close(self) -> None:
        self.transport.close()

    def __enter__(self) -> "PipelineSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
