"""The shared runtime core: one stage-execution path, pluggable transports.

Every executor in the repo drives frames through the same three steps —
split the stage input into per-device tiles, run each task's compiled
segment, stitch the output map — and differ only in *where* tasks run
and *what clock* stamps the trace.  :func:`execute_stage` owns the
split/stitch and trace emission; a :class:`Transport` supplies task
execution and timestamps:

========================  =========================  ====================
backend                   tasks run on               clock
========================  =========================  ====================
:class:`InProcTransport`  the shared thread pool     wall (perf_counter)
``TcpTransport``          worker processes over TCP  wall (perf_counter)
:class:`SimTransport`     inline, serially           virtual (Eq. 9 cost)
========================  =========================  ====================

Because tiles, kernels and stitching are shared, all three produce
bit-identical frame outputs, and their canonical traces (timestamp-free
event sequences) are equal — the exactness gate that lets simulated
timelines stand in for live ones.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn import parallel
from repro.nn.executor import Engine
from repro.nn.tiles import run_segment
from repro.runtime.program import (
    PlanProgram,
    StageProgram,
    TaskSpec,
    compile_plan,
    split_stage,
    stitch_stage,
)
from repro.runtime.timing import PlanTiming, plan_timing
from repro.runtime.trace import TraceEvent, Tracer

__all__ = [
    "TaskTiming",
    "StageTrace",
    "Transport",
    "InProcTransport",
    "SimTransport",
    "execute_stage",
    "PipelineSession",
]


@dataclass(frozen=True)
class TaskTiming:
    """Transport-reported ``(start, end)`` spans for one task's phases."""

    send: Tuple[float, float]
    compute: Tuple[float, float]
    recv: Tuple[float, float]


@dataclass(frozen=True)
class StageTrace:
    """Transport-reported timing of one stage serving one frame."""

    entry: float  # frame arrived at the stage
    start: float  # stage began serving it (entry + queueing)
    exit: float  # stage finished
    tasks: Tuple[TaskTiming, ...]


class Transport(ABC):
    """Carries one stage's tiles to compute sites and back.

    A transport is bound to a :class:`PlanProgram` via :meth:`open`.
    :meth:`run_tasks` receives the per-task input tiles (split by the
    core, in task order) and returns the per-task output tiles plus the
    stage's :class:`StageTrace` under this backend's clock.
    """

    name: str = "?"

    def open(self, program: PlanProgram) -> None:
        self._program = program

    def close(self) -> None:  # pragma: no cover - default no-op
        pass

    def begin_frame(self, frame: int, at: Optional[float] = None) -> None:
        """Announce a new frame; ``at`` is its (virtual) submit time."""

    def stage_tasks(self, stage_index: int) -> "Tuple[TaskSpec, ...]":
        """The stage's *current* task set (overridden after recovery)."""
        return self._program.stages[stage_index].tasks

    @abstractmethod
    def run_tasks(
        self,
        stage_index: int,
        tiles: "Sequence[np.ndarray]",
        frame: int,
    ) -> "Tuple[List[np.ndarray], StageTrace]":
        """Execute the stage's tasks on their input tiles."""


def execute_stage(
    transport: Transport,
    program: PlanProgram,
    stage_index: int,
    x: np.ndarray,
    frame: int,
    tracer: Optional[Tracer] = None,
) -> np.ndarray:
    """Run one stage of one frame through a transport.

    The single split → compute → stitch path shared by every backend.
    Trace events are emitted in canonical order — enqueue, then per
    task (in task order) send/compute/recv — so event *ordering* is
    deterministic for any backend; only timestamps differ.
    """
    stage = program.stages[stage_index]
    tasks = transport.stage_tasks(stage_index)
    tiles = split_stage(tasks, x)
    outs, st = transport.run_tasks(stage_index, tiles, frame)
    if tracer is not None:
        events = [
            TraceEvent("enqueue", frame, stage_index, "", st.entry, st.start)
        ]
        for task, tile, out, tt in zip(tasks, tiles, outs, st.tasks):
            events.append(
                TraceEvent(
                    "send", frame, stage_index, task.device_name,
                    tt.send[0], tt.send[1], tile.nbytes,
                )
            )
            events.append(
                TraceEvent(
                    "compute", frame, stage_index, task.device_name,
                    tt.compute[0], tt.compute[1],
                )
            )
            events.append(
                TraceEvent(
                    "recv", frame, stage_index, task.device_name,
                    tt.recv[0], tt.recv[1], out.nbytes,
                )
            )
        tracer.extend(events)
    return stitch_stage(stage, tasks, outs)


class InProcTransport(Transport):
    """Tasks on the shared thread pool, wall clock — the local executor.

    Per-device tiles genuinely overlap on a multi-core host (numpy's
    kernels release the GIL); with ``REPRO_THREADS=1`` they run
    serially and bit-identically.
    """

    name = "inproc"

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._epoch = time.perf_counter()

    def open(self, program: PlanProgram) -> None:
        if program.model_name != self.engine.model.name:
            raise ValueError(
                f"program is for {program.model_name!r}, engine runs "
                f"{self.engine.model.name!r}"
            )
        super().open(program)
        self._epoch = time.perf_counter()

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def run_tasks(
        self,
        stage_index: int,
        tiles: "Sequence[np.ndarray]",
        frame: int,
    ) -> "Tuple[List[np.ndarray], StageTrace]":
        tasks = self.stage_tasks(stage_index)
        entry = self._now()
        spans: "List[Optional[Tuple[float, float]]]" = [None] * len(tasks)

        def run_task(i: int, task: TaskSpec, tile: np.ndarray) -> np.ndarray:
            t0 = self._now()
            out = run_segment(self.engine, task.program, tile)
            spans[i] = (t0, self._now())
            return out

        outs = parallel.run_parallel(
            [
                lambda i=i, task=task, tile=tile: run_task(i, task, tile)
                for i, (task, tile) in enumerate(zip(tasks, tiles))
            ]
        )
        exit_ = self._now()
        timings = tuple(
            TaskTiming(send=(entry, entry), compute=spans[i], recv=(exit_, exit_))
            for i in range(len(tasks))
        )
        return outs, StageTrace(entry, entry, exit_, timings)


class SimTransport(Transport):
    """Tasks inline with a virtual clock — real tensors, analytic time.

    Replaces the physical testbed: frames are actually computed (so
    outputs are bit-identical to the live backends), but every
    timestamp comes from the Eq. 9 stage-cost model through the shared
    :func:`~repro.runtime.timing.plan_timing` tables.  Stages are FIFO
    servers: stage ``s`` starts a frame at
    ``max(frame ready, stage free)``, exactly the event simulator's
    deterministic-service recurrence, so a trace from here is the
    frame-level expansion of a :func:`simulate_plan` run.  Exclusive
    plans serialise every stage through one server token.
    """

    name = "sim"

    def __init__(
        self,
        engine: Engine,
        network,
        options=None,
    ) -> None:
        self.engine = engine
        self.network = network
        self.options = options
        self.timing: Optional[PlanTiming] = None
        self._stage_free: "List[float]" = []
        self._exclusive_free = 0.0
        self._frame_ready = 0.0
        self._last_submit = 0.0
        self._virtual_now = 0.0

    def open(self, program: PlanProgram) -> None:
        if program.model_name != self.engine.model.name:
            raise ValueError(
                f"program is for {program.model_name!r}, engine runs "
                f"{self.engine.model.name!r}"
            )
        super().open(program)
        self.timing = plan_timing(
            self.engine.model, program.plan, self.network, self.options
        )
        self._stage_free = [0.0] * program.n_stages
        self._exclusive_free = 0.0
        self._frame_ready = 0.0
        self._last_submit = 0.0
        self._virtual_now = 0.0

    @property
    def now(self) -> float:
        """The virtual clock: completion time of the latest work."""
        return self._virtual_now

    def begin_frame(self, frame: int, at: Optional[float] = None) -> None:
        if at is None:
            at = self._last_submit  # back-to-back submission
        if at < self._last_submit:
            raise ValueError("frames must be submitted in time order")
        self._last_submit = at
        self._frame_ready = at

    def run_tasks(
        self,
        stage_index: int,
        tiles: "Sequence[np.ndarray]",
        frame: int,
    ) -> "Tuple[List[np.ndarray], StageTrace]":
        assert self.timing is not None, "transport not opened"
        tasks = self.stage_tasks(stage_index)
        sc = self.timing.cost.stage_costs[stage_index]
        by_device = {dc.device.name: dc for dc in sc.devices}
        entry = self._frame_ready
        if self._program.mode == "exclusive":
            start = max(entry, self._exclusive_free)
        else:
            start = max(entry, self._stage_free[stage_index])
        outs = [
            run_segment(self.engine, task.program, tile)
            for task, tile in zip(tasks, tiles)
        ]
        timings = []
        for task in tasks:
            dc = by_device.get(task.device_name)
            t_comm = dc.t_comm if dc is not None else 0.0
            t_comp = dc.t_comp if dc is not None else 0.0
            send_end = start + t_comm
            timings.append(
                TaskTiming(
                    send=(start, send_end),
                    compute=(send_end, send_end + t_comp),
                    recv=(start + sc.total, start + sc.total),
                )
            )
        exit_ = start + sc.total
        if self._program.mode == "exclusive":
            self._exclusive_free = exit_
        else:
            self._stage_free[stage_index] = exit_
        self._frame_ready = exit_
        self._virtual_now = max(self._virtual_now, exit_)
        return outs, StageTrace(entry, start, exit_, tuple(timings))


class PipelineSession:
    """Drives frames through a :class:`PlanProgram` over any transport.

    The one plan-walking loop: stages in order, each via
    :func:`execute_stage`.  Construct from a compiled program or let
    :meth:`from_plan` compile one.
    """

    def __init__(
        self,
        program: PlanProgram,
        transport: Transport,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.program = program
        self.transport = transport
        self.tracer = tracer
        transport.open(program)
        self._next_frame = 0

    @classmethod
    def from_plan(
        cls,
        model,
        plan,
        transport: Transport,
        tracer: Optional[Tracer] = None,
    ) -> "PipelineSession":
        return cls(compile_plan(model, plan), transport, tracer)

    def run_frame(
        self, x: np.ndarray, at: Optional[float] = None
    ) -> np.ndarray:
        """Run one frame through every stage; returns the feature map."""
        frame = self._next_frame
        self._next_frame += 1
        self.transport.begin_frame(frame, at)
        out = np.ascontiguousarray(x, dtype=np.float32)
        for index in range(self.program.n_stages):
            out = execute_stage(
                self.transport, self.program, index, out, frame, self.tracer
            )
        return out

    def run_batch(
        self,
        frames: "Sequence[np.ndarray]",
        arrivals: "Optional[Sequence[float]]" = None,
    ) -> "List[np.ndarray]":
        """Run frames in order; ``arrivals`` gives virtual submit times."""
        if arrivals is not None and len(arrivals) != len(frames):
            raise ValueError("arrivals must align one-to-one with frames")
        return [
            self.run_frame(x, arrivals[i] if arrivals is not None else None)
            for i, x in enumerate(frames)
        ]

    def close(self) -> None:
        self.transport.close()

    def __enter__(self) -> "PipelineSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
