"""Worker process: executes tile programs on demand.

A worker owns one device role in one stage.  It connects back to the
coordinator, receives its :class:`Setup` (model spec + segment program
+ weights), then loops: receive a tile, run the compiled program with
the numpy engine, return the output tile with its compute time.
"""

from __future__ import annotations

import socket
import time
from typing import Optional

from repro.nn.executor import Engine
from repro.nn.tiles import run_segment
from repro.runtime.messages import (
    Hello,
    Reconfigure,
    Setup,
    ShmAttach,
    Shutdown,
    TileResult,
    TileTask,
    WorkerError,
)
from repro.runtime.shm import ShmChannel, ShmRing
from repro.runtime.transport import Channel, TransportClosed

__all__ = ["worker_main"]


def worker_main(
    host: str,
    port: int,
    worker_id: int,
    fail_after: Optional[int] = None,
    idle_timeout_s: Optional[float] = None,
) -> None:
    """Entry point for a worker process.

    ``fail_after`` makes the worker crash after N tasks — used by the
    failure-injection tests to exercise coordinator recovery.
    ``idle_timeout_s`` bounds how long the worker waits for the next
    message; hitting it exits cleanly (an orphaned worker whose
    coordinator died stops consuming the host instead of blocking on
    ``recv`` forever).
    """
    sock = socket.create_connection((host, port))
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    channel = Channel(sock)
    if idle_timeout_s is not None:
        channel.settimeout(idle_timeout_s)
    rings = []
    try:
        channel.send(Hello(worker_id))
        setup = channel.recv()
        if isinstance(setup, ShmAttach):
            # Zero-copy mode: attach to the coordinator's rings (never
            # unlink them — they outlive this process) and swap the
            # payload plane; the socket keeps carrying control frames.
            send_ring = ShmRing.attach(setup.send_name)
            recv_ring = ShmRing.attach(setup.recv_name)
            rings = [send_ring, recv_ring]
            channel = ShmChannel(sock, send_ring, recv_ring)
            if idle_timeout_s is not None:
                channel.settimeout(idle_timeout_s)
            setup = channel.recv()
        if not isinstance(setup, Setup):
            raise RuntimeError(f"expected Setup, got {type(setup).__name__}")
        engine = Engine(setup.model, setup.weights)
        program = setup.program
        processed = 0
        while True:
            message = channel.recv()
            if isinstance(message, Shutdown):
                return
            if isinstance(message, Reconfigure):
                program = message.program
                continue
            if not isinstance(message, TileTask):
                raise RuntimeError(f"unexpected message {type(message).__name__}")
            if fail_after is not None and processed >= fail_after:
                # Simulated crash: drop the connection mid-task.
                return
            started = time.perf_counter()
            try:
                out = run_segment(engine, program, message.tile)
            except Exception as exc:  # report, keep serving
                channel.send(
                    WorkerError(message.task_id, worker_id, str(exc), message.epoch)
                )
                continue
            processed += 1
            channel.send(
                TileResult(
                    message.task_id,
                    worker_id,
                    out,
                    time.perf_counter() - started,
                    message.epoch,
                )
            )
    except TransportClosed:
        return
    finally:
        channel.close()
        for ring in rings:  # no-op after ShmChannel.close; never unlinks
            ring.close()
