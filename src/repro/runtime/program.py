"""The plan-agnostic execution IR every runtime backend consumes.

A :class:`PlanProgram` is a :class:`~repro.core.plan.PipelinePlan`
compiled once into per-stage :class:`TaskSpec` work items: the compiled
:class:`~repro.nn.tiles.SegmentProgram`, where each device's tile lands
in the stage output (strip region or branch channel blocks), and the
stage's tensor hand-off shape.  The in-process executor, the TCP
coordinator and the virtual-clock simulator all walk this one IR —
compilation, splitting and stitching live here instead of being
re-implemented per backend, which is what makes their frame outputs
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.plan import PipelinePlan, StagePlan
from repro.models.graph import Model
from repro.nn.tiles import (
    SegmentProgram,
    compile_block_paths_cached,
    compile_channel_slice_cached,
    compile_segment_cached,
    extract_tile,
)
from repro.partition.branches import concat_channel_blocks
from repro.partition.regions import Region

__all__ = [
    "TaskSpec",
    "StageProgram",
    "PlanProgram",
    "compile_plan",
    "compile_stage",
    "repartition_stage",
    "split_stage",
    "stack_frames",
    "stitch_stage",
    "task_weight_names",
    "unstack_frames",
]


@dataclass(frozen=True)
class TaskSpec:
    """One device's share of one stage."""

    device_name: str
    capacity: float
    program: SegmentProgram
    #: Spatial placement of the output tile for strip tasks (``None``
    #: for branch tasks, whose tiles span the full map).
    region: Optional[Region]
    #: Channel copy list ``(tile_lo, tile_hi, out_lo, out_hi)`` for
    #: branch tasks (``None`` for strip tasks).
    channel_blocks: Optional[Tuple[Tuple[int, int, int, int], ...]]
    #: Block paths this task executes (branch stages only).
    paths: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True)
class StageProgram:
    """One compiled stage: the unit segment, its output map shape and
    the per-device task set (empty assignments already dropped)."""

    index: int
    start: int
    end: int
    out_shape: Tuple[int, int, int]
    tasks: Tuple[TaskSpec, ...]

    @property
    def branch(self) -> bool:
        return any(task.paths is not None for task in self.tasks)

    @property
    def channel(self) -> bool:
        """Channel-parallel (IOP) stage: tasks carry channel blocks but
        no block paths."""
        return any(
            task.paths is None and task.channel_blocks is not None
            for task in self.tasks
        )

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)


@dataclass(frozen=True)
class PlanProgram:
    """A fully compiled plan, ready for any Transport backend."""

    model_name: str
    mode: str  # "pipelined" | "exclusive"
    n_units: int
    stages: Tuple[StageProgram, ...]
    #: The source plan — kept for the analytic cost model (timing
    #: tables, simulated clocks) and for reporting.
    plan: PipelinePlan

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    def describe(self) -> str:
        lines = [
            f"{self.model_name} program ({self.mode}, {self.n_stages} stages)"
        ]
        for stage in self.stages:
            names = ", ".join(t.device_name for t in stage.tasks)
            kind = " [branch]" if stage.branch else (
                " [channel]" if stage.channel else ""
            )
            lines.append(
                f"  stage {stage.index}: units [{stage.start}, {stage.end}) "
                f"-> {stage.out_shape}, {stage.n_tasks} task(s): {names}{kind}"
            )
        return "\n".join(lines)


def compile_stage(model: Model, stage: StagePlan, index: int) -> StageProgram:
    """Compile one plan stage into its task set (memoised compilers)."""
    out_shape = model.out_shape(stage.end - 1)
    tasks: "List[TaskSpec]" = []
    if stage.path_groups is not None:
        for (device, _), group in zip(stage.assignments, stage.path_groups):
            if not group:
                continue  # idle device in a branch stage
            group = tuple(group)
            program = compile_block_paths_cached(model, stage.start, group)
            blocks = tuple(concat_channel_blocks(model, stage.start, group))
            tasks.append(
                TaskSpec(device.name, device.capacity, program, None, blocks, group)
            )
    elif stage.channel_groups is not None:
        c_out = out_shape[0]
        covered = sorted(
            (lo, hi) for lo, hi in stage.channel_groups if hi > lo
        )
        cursor = 0
        for lo, hi in covered:
            if lo != cursor:
                raise ValueError(
                    f"channel groups {covered} must tile [0, {c_out}) exactly"
                )
            cursor = hi
        if cursor != c_out:
            raise ValueError(
                f"channel groups {covered} must tile [0, {c_out}) exactly"
            )
        for (device, _), (lo, hi) in zip(stage.assignments, stage.channel_groups):
            if hi <= lo:
                continue  # idle device in a channel stage
            program = compile_channel_slice_cached(model, stage.start, lo, hi)
            tasks.append(
                TaskSpec(
                    device.name,
                    device.capacity,
                    program,
                    None,
                    ((0, hi - lo, lo, hi),),
                )
            )
    else:
        for device, region in stage.assignments:
            if region.empty:
                continue
            program = compile_segment_cached(model, stage.start, stage.end, region)
            tasks.append(
                TaskSpec(device.name, device.capacity, program, region, None)
            )
    if not tasks:
        raise ValueError(
            f"stage [{stage.start}, {stage.end}) has no non-empty work"
        )
    return StageProgram(index, stage.start, stage.end, out_shape, tuple(tasks))


def compile_plan(model: Model, plan: PipelinePlan) -> PlanProgram:
    """Compile a plan (any scheme, pipelined or exclusive) into the IR.

    Raises ``ValueError`` when the plan does not belong to ``model`` or
    does not cover it — the single validation point for every backend.
    """
    if plan.model_name != model.name:
        raise ValueError(
            f"plan is for {plan.model_name!r}, model is {model.name!r}"
        )
    if plan.stages[-1].end != model.n_units:
        raise ValueError(
            f"plan covers units [0, {plan.stages[-1].end}) but the model "
            f"has {model.n_units}"
        )
    stages = tuple(
        compile_stage(model, stage, index)
        for index, stage in enumerate(plan.stages)
    )
    return PlanProgram(model.name, plan.mode, model.n_units, stages, plan)


def repartition_stage(
    model: Optional[Model],
    stage: StageProgram,
    dead: "Sequence[str]",
    policy: str = "migrate",
) -> StageProgram:
    """Rebuild a stage's task set after device deaths.

    ``"migrate"`` (no ``model`` needed, zero recompilation) hands each
    dead device's *compiled* task — same segment program, same output
    region — to a survivor, strongest first.  Tile geometry is
    untouched, so the repaired stage's stitched output is
    **bit-identical** to the fault-free run; a survivor simply computes
    extra tiles.

    ``"rebalance"`` re-splits the stage capacity-weighted over the
    survivors through :func:`compile_stage` (strip rows and IOP channel
    slices via :func:`~repro.partition.strips.weighted_partition`,
    block paths via LPT).  Better load balance, but the new tile shapes
    change GEMM reduction order, so outputs are only float-close — it
    is the TCP backend's policy, whose workers each hold a single tile
    program.

    Raises :class:`~repro.runtime.faults.StageFailure` when no device
    survives.
    """
    dead_set = set(dead)
    survivors = tuple(t for t in stage.tasks if t.device_name not in dead_set)
    lost = tuple(t for t in stage.tasks if t.device_name in dead_set)
    if not survivors:
        from repro.runtime.faults import StageFailure

        raise StageFailure(
            f"stage {stage.index}: every device is dead ({sorted(dead_set)})"
        )
    if policy == "migrate":
        if not lost:
            return stage
        ranked = sorted(
            survivors, key=lambda t: (-t.capacity, t.device_name)
        )
        tasks = list(survivors)
        for i, task in enumerate(lost):
            host = ranked[i % len(ranked)]
            tasks.append(
                TaskSpec(
                    host.device_name,
                    host.capacity,
                    task.program,
                    task.region,
                    task.channel_blocks,
                    task.paths,
                )
            )
        return StageProgram(
            stage.index, stage.start, stage.end, stage.out_shape, tuple(tasks)
        )
    if policy != "rebalance":
        raise ValueError(f"unknown repartition policy {policy!r}")
    if model is None:
        raise ValueError("policy='rebalance' needs the model to recompile")
    # One surviving device may carry several migrated tasks; rebalance
    # collapses it back to one capacity share.
    from repro.cluster.device import Device
    from repro.core.plan import StagePlan

    capacities: "dict" = {}
    for t in survivors:
        capacities.setdefault(t.device_name, t.capacity)
    devices = tuple(Device(n, c) for n, c in capacities.items())
    if stage.branch:
        from repro.partition.branches import assign_paths_lpt, path_flops

        weights = path_flops(model, stage.start)
        groups = assign_paths_lpt(weights, [d.capacity for d in devices])
        _, h, w = stage.out_shape
        plan_stage = StagePlan(
            stage.start,
            stage.end,
            tuple((d, Region.full(h, w)) for d in devices),
            path_groups=tuple(tuple(sorted(g)) for g in groups),
        )
    elif stage.channel:
        from repro.partition.strips import weighted_partition

        c_out, h, w = stage.out_shape
        slices = weighted_partition(c_out, [d.capacity for d in devices])
        plan_stage = StagePlan(
            stage.start,
            stage.end,
            tuple((d, Region.full(h, w)) for d in devices),
            channel_groups=tuple((iv.start, iv.end) for iv in slices),
        )
    else:
        from repro.partition.strips import weighted_partition

        _, h, w = stage.out_shape
        rows = weighted_partition(h, [d.capacity for d in devices])
        plan_stage = StagePlan(
            stage.start,
            stage.end,
            tuple(
                (d, Region.from_bounds(iv.start, iv.end, 0, w))
                for d, iv in zip(devices, rows)
            ),
        )
    return compile_stage(model, plan_stage, stage.index)


def split_stage(
    tasks: "Sequence[TaskSpec]", feature_map: np.ndarray
) -> "List[np.ndarray]":
    """Extract each task's (halo-padded) input tile, in task order.

    ``feature_map`` may be a single ``(C, H, W)`` map or a batched
    ``(C, B, H, W)`` stack of every co-resident frame's map — tiles
    come out with the same rank.
    """
    return [extract_tile(feature_map, t.program.input_region) for t in tasks]


def stack_frames(frames: "Sequence[np.ndarray]") -> np.ndarray:
    """Stack per-frame ``(C, H, W)`` maps into one ``(C, B, H, W)``
    cross-frame batch (channel-major with batch second — the layout the
    batched kernels consume with zero transposes)."""
    if not frames:
        raise ValueError("cannot stack an empty frame list")
    if len(frames) == 1:
        return np.ascontiguousarray(frames[0][:, None], dtype=np.float32)
    return np.ascontiguousarray(
        np.stack(frames, axis=1), dtype=np.float32
    )


def unstack_frames(stacked: np.ndarray) -> "List[np.ndarray]":
    """Split a ``(C, B, H, W)`` batch back into per-frame contiguous
    ``(C, H, W)`` maps — the inverse of :func:`stack_frames`."""
    if stacked.ndim != 4:
        raise ValueError(f"expected a (C, B, H, W) batch, got {stacked.shape}")
    return [
        np.ascontiguousarray(stacked[:, b]) for b in range(stacked.shape[1])
    ]


def stitch_stage(
    stage: StageProgram,
    tasks: "Sequence[TaskSpec]",
    tiles: "Sequence[np.ndarray]",
) -> np.ndarray:
    """Reassemble the stage's full output map from per-task tiles.

    Batched ``(C, B, H, W)`` tiles stitch into a batched output of
    shape ``(C, B, *out_shape[1:])`` — the channel-block and region
    writes are rank-agnostic, so the per-frame slices land exactly
    where the single-frame stitch would put them.
    """
    if len(tasks) == 1 and tasks[0].region is not None:
        region = tasks[0].region
        if (region.height, region.width) == stage.out_shape[1:]:
            return tiles[0]  # one device produced the whole map
    if tiles and tiles[0].ndim == 4:
        shape = (stage.out_shape[0], tiles[0].shape[1], *stage.out_shape[1:])
    else:
        shape = stage.out_shape
    out = np.empty(shape, dtype=np.float32)
    for task, tile in zip(tasks, tiles):
        if task.channel_blocks is not None:
            for t_lo, t_hi, o_lo, o_hi in task.channel_blocks:
                out[o_lo:o_hi] = tile[t_lo:t_hi]
        else:
            region = task.region
            out[
                ...,
                region.rows.start : region.rows.end,
                region.cols.start : region.cols.end,
            ] = tile
    return out


def task_weight_names(program: SegmentProgram) -> "Set[str]":
    """Layer names a compiled segment touches (for weight shipping)."""
    names: "Set[str]" = set()
    for unit in program.units:
        for step in unit.steps:
            names.add(step.layer.name)
        for path in unit.paths:
            for step in path.steps:
                names.add(step.layer.name)
    return names
