"""Zero-copy shared-memory payload plane for same-host workers.

The framed TCP transport pays three copies per tensor hop on one box:
encode → kernel send buffer → receive buffer.  This module moves the
tensor *payload plane* into a ``multiprocessing.shared_memory`` ring of
preallocated slots while the *control plane* (message skeletons, slot
descriptors, releases) stays on the existing framed socket:

* the sender copies a contiguous tensor once into a free ring slot
  (or not at all when the tensor is already a slot view);
* the control frame carries ``(slot, dtype, shape)`` instead of bytes;
* the receiver maps the slot with ``np.ndarray(buffer=shm.buf)`` — a
  view, zero copy, zero deserialisation.

Segment layout (one ring)::

    offset 0    magic | slot_bytes | n_slots          (64-byte header)
    offset 64   slot 0  [slot_bytes, 64-byte aligned]
    ...         slot k  at 64 + k * slot_bytes

Each channel owns **two** rings — coordinator→worker and
worker→coordinator — both created (and eventually unlinked) by the
coordinator; the worker only attaches.  Slot lifetime follows the
stage protocol: the reader of a slot announces it free in the header
of its *next send* on the same channel (a release list piggybacked on
the control frame), which costs zero extra round trips because stage
traffic strictly alternates send → recv per channel.  A full ring
blocks the sender in :meth:`ShmRing.acquire` — that wait *is* the
transport's backpressure, surfaced via ring occupancy.

Crash safety: creator rings register in a module registry unlinked by
an ``atexit`` hook, so a coordinator killed by ``KeyboardInterrupt``
leaves no ``/dev/shm`` segments behind; attachers deregister from the
``resource_tracker`` so a worker's exit never unlinks segments the
coordinator still serves from.  Tensors that don't fit a slot (or are
too small to be worth one) fall back inline to the framed codec —
correctness never depends on slot geometry.
"""

from __future__ import annotations

import atexit
import itertools
import os
import struct
import threading
from collections import deque
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.messages import TileResult, TileTask
from repro.runtime.transport import (
    Channel,
    array_header,
    decode_message,
    pickle_skeleton,
    require_wire_safe,
    unpickle_skeleton,
)

__all__ = [
    "SHM_PREFIX",
    "SlotExhausted",
    "ShmRing",
    "ShmChannel",
    "cleanup_rings",
]

#: Every segment this module creates is named ``repro_shm_<pid>_<seq>``
#: so leak guards (and humans) can find strays in ``/dev/shm``.
SHM_PREFIX = "repro_shm_"

_MAGIC = 0x52505253  # "RPRS"
_RING_HEADER = struct.Struct(">IQI")  # magic, slot_bytes, n_slots
_HEADER_BYTES = 64
_SLOT_ALIGN = 64

_V2_VERSION = 2
_V2_PREAMBLE = struct.Struct(">BH")  # version, n_releases
_U32 = struct.Struct(">I")
_KIND = struct.Struct(">B")
_INLINE, _SLOT = 0, 1

#: Arrays smaller than this ship inline — a slot round-trip costs more
#: than the copy it saves.
MIN_SLOT_PAYLOAD = 1 << 10

_seq = itertools.count()
_registry_lock = threading.Lock()
_created: "dict" = {}  # name -> ShmRing (creator side only)


def _unregister_tracker(name: str) -> None:
    """Detach a segment from this process's resource tracker.

    An attaching ``SharedMemory`` auto-registers with the tracker,
    which would unlink the segment when *this* process exits — wrong
    for workers attaching to coordinator-owned rings.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def cleanup_rings() -> None:
    """Destroy every still-registered creator ring (atexit / interrupt)."""
    with _registry_lock:
        rings = list(_created.values())
    for ring in rings:
        ring.destroy()


atexit.register(cleanup_rings)


class SlotExhausted(RuntimeError):
    """No ring slot freed up within the acquire timeout."""


class ShmRing:
    """A shared-memory segment of fixed-size tensor slots.

    The *writer* side owns the free list (plain local state — slots
    are never contended across processes because each ring has exactly
    one writer); the reader returns slots via the channel's release
    piggyback, which the writer applies with :meth:`release`.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        slot_bytes: int,
        n_slots: int,
        creator: bool,
    ) -> None:
        self._shm = shm
        self.slot_bytes = slot_bytes
        self.n_slots = n_slots
        self._creator = creator
        self._free: "deque" = deque(range(n_slots))
        self._cond = threading.Condition()
        self._closed = False

    @property
    def name(self) -> str:
        return self._shm.name

    # -- lifecycle -----------------------------------------------------
    @classmethod
    def create(cls, slot_bytes: int, n_slots: int) -> "ShmRing":
        """Create (and own) a new ring segment."""
        if slot_bytes <= 0 or n_slots <= 0:
            raise ValueError("ring needs positive slot_bytes and n_slots")
        slot_bytes = -(-slot_bytes // _SLOT_ALIGN) * _SLOT_ALIGN
        name = f"{SHM_PREFIX}{os.getpid()}_{next(_seq)}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=_HEADER_BYTES + slot_bytes * n_slots
        )
        _RING_HEADER.pack_into(shm.buf, 0, _MAGIC, slot_bytes, n_slots)
        ring = cls(shm, slot_bytes, n_slots, creator=True)
        with _registry_lock:
            _created[name] = ring
        return ring

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        """Attach to an existing ring; geometry comes from its header."""
        shm = shared_memory.SharedMemory(name=name)
        _unregister_tracker(name)
        magic, slot_bytes, n_slots = _RING_HEADER.unpack_from(shm.buf, 0)
        if magic != _MAGIC:
            shm.close()
            raise ValueError(f"segment {name!r} is not a repro shm ring")
        return cls(shm, slot_bytes, n_slots, creator=False)

    def close(self) -> None:
        """Detach from the segment (never unlinks)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:
            # Live numpy views still export the buffer; the mapping is
            # released with the process instead — unlink still works.
            pass

    def unlink(self) -> None:
        """Remove the segment from /dev/shm (creator side, idempotent)."""
        if not self._creator:
            return
        with _registry_lock:
            _created.pop(self.name, None)
        try:
            # Re-register first: a forked worker shares this process's
            # resource tracker, and its attach-side unregister already
            # removed our entry — unlink()'s own unregister would then
            # make the tracker print a KeyError.  Registering is a set
            # add, so this balances the books either way.
            from multiprocessing import resource_tracker

            resource_tracker.register(f"/{self.name}", "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def destroy(self) -> None:
        self.close()
        self.unlink()

    # -- slot bookkeeping (writer side) --------------------------------
    def acquire(self, timeout: "Optional[float]" = None) -> int:
        """Claim a free slot, blocking up to ``timeout`` — this wait is
        the ring's backpressure.  Raises :class:`SlotExhausted` when
        nothing frees up in time."""
        with self._cond:
            if not self._cond.wait_for(lambda: self._free, timeout=timeout):
                raise SlotExhausted(
                    f"ring {self.name}: no free slot within {timeout}s"
                )
            return self._free.popleft()

    def release(self, slot: int) -> None:
        """Return a slot to the free list (the reader announced it)."""
        if not 0 <= slot < self.n_slots:
            raise ValueError(f"slot {slot} out of range [0, {self.n_slots})")
        with self._cond:
            if slot in self._free:
                raise ValueError(f"slot {slot} released twice")
            self._free.append(slot)
            self._cond.notify()

    def occupancy(self) -> float:
        """In-use fraction of the ring, in [0, 1]."""
        with self._cond:
            return 1.0 - len(self._free) / self.n_slots

    # -- slot data -----------------------------------------------------
    def _offset(self, slot: int) -> int:
        return _HEADER_BYTES + slot * self.slot_bytes

    def write(self, slot: int, contiguous: np.ndarray) -> None:
        """Copy a contiguous array into a slot (the send-side memcpy)."""
        nbytes = contiguous.nbytes
        if nbytes > self.slot_bytes:
            raise ValueError(
                f"{nbytes} byte tensor exceeds {self.slot_bytes} byte slot"
            )
        off = self._offset(slot)
        # np.copyto over a flat byte view — measurably faster than a
        # memoryview slice assignment for multi-megabyte tensors.
        dst = np.frombuffer(self._shm.buf, dtype=np.uint8, count=nbytes, offset=off)
        np.copyto(dst, contiguous.reshape(-1).view(np.uint8))

    def slot_view(self, slot: int, shape, dtype) -> np.ndarray:
        """Map an *owned* slot as a writable ndarray (in-place produce)."""
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        if nbytes > self.slot_bytes:
            raise ValueError(
                f"{nbytes} byte tensor exceeds {self.slot_bytes} byte slot"
            )
        return np.frombuffer(
            self._shm.buf,
            dtype=dtype,
            count=nbytes // dtype.itemsize,
            offset=self._offset(slot),
        ).reshape(shape)

    def view(self, slot: int, descr: str, shape, nbytes: int) -> np.ndarray:
        """Map a slot as an ndarray — the zero-copy read."""
        dtype = np.dtype(descr)
        if nbytes > self.slot_bytes:
            raise ValueError("slot descriptor overruns the slot")
        return np.frombuffer(
            self._shm.buf,
            dtype=dtype,
            count=nbytes // dtype.itemsize,
            offset=self._offset(slot),
        ).reshape(shape)


class ShmChannel(Channel):
    """A framed channel whose tensor payloads ride shared-memory slots.

    Control frames (codec version 2) stay on the socket::

        u8 version=2 | u16 n_releases | n_releases × u32 slot
        u32 n_arrays
        n_arrays × [u8 kind | array descriptor |
                    kind=0: raw bytes — kind=1: u32 slot]
        pickled skeleton

    Only message types in ``slot_types`` (tile traffic) use slots;
    everything else — ``Setup`` weights a worker retains past the
    message lifetime, handshakes, errors — ships inline, as do tensors
    larger than a slot or too small to be worth one.  Received slot
    views are valid until this side's next :meth:`send` on the channel
    (which is when their release is announced) — exactly the window the
    stage protocol needs, since a stage stitches (copying) before the
    next frame is sent.
    """

    def __init__(
        self,
        sock,
        send_ring: ShmRing,
        recv_ring: ShmRing,
        slot_types: "Tuple[type, ...]" = (TileTask, TileResult),
        acquire_timeout_s: float = 60.0,
    ) -> None:
        super().__init__(sock)
        self.send_ring = send_ring
        self.recv_ring = recv_ring
        self._slot_types = tuple(slot_types)
        self._acquire_timeout_s = acquire_timeout_s
        self._to_release: "List[int]" = []
        self._loans: "Dict[int, int]" = {}  # data pointer -> owned slot

    def loan_slot(self, shape, dtype=np.float32) -> np.ndarray:
        """Borrow a send-ring slot as a writable ndarray (zero-copy send).

        The producer fills the returned view in place and passes it to
        :meth:`send` inside a slot-eligible message; the encoder
        recognises the loaned array by its data pointer and skips the
        slot memcpy entirely — the tensor was *produced* in shared
        memory, so the send carries only the header-sized control
        frame.  Each loan must be sent exactly once; a loan that is
        never sent holds its slot until the channel closes.
        """
        slot = self.send_ring.acquire(self._acquire_timeout_s)
        view = self.send_ring.slot_view(slot, shape, dtype)
        self._loans[view.__array_interface__["data"][0]] = slot
        return view

    # -- codec ---------------------------------------------------------
    def _encode_parts(self, message: Any) -> "Tuple[List[Any], int]":
        skeleton, arrays = pickle_skeleton(message)
        use_slots = isinstance(message, self._slot_types)
        releases, self._to_release = self._to_release, []
        parts: "List[Any]" = [_V2_PREAMBLE.pack(_V2_VERSION, len(releases))]
        parts.extend(_U32.pack(slot) for slot in releases)
        parts.append(_U32.pack(len(arrays)))
        for arr in arrays:
            require_wire_safe(arr)
            contiguous = np.ascontiguousarray(arr)
            slot = None
            if (
                use_slots
                and MIN_SLOT_PAYLOAD
                <= contiguous.nbytes
                <= self.send_ring.slot_bytes
            ):
                ptr = contiguous.__array_interface__["data"][0]
                loaned = self._loans.pop(ptr, None)
                if loaned is not None:
                    slot = loaned  # produced in place via loan_slot()
                else:
                    slot = self.send_ring.acquire(self._acquire_timeout_s)
                    self.send_ring.write(slot, contiguous)
            if slot is None:
                parts.append(_KIND.pack(_INLINE))
                parts.append(array_header(contiguous, arr.shape))
                parts.append(memoryview(contiguous).cast("B"))
            else:
                parts.append(_KIND.pack(_SLOT))
                parts.append(array_header(contiguous, arr.shape))
                parts.append(_U32.pack(slot))
        parts.append(skeleton)
        return parts, sum(len(p) for p in parts)

    def _decode(self, payload: memoryview) -> Any:
        if len(payload) < _V2_PREAMBLE.size or payload[0] != _V2_VERSION:
            # Pre-attach traffic (Hello) is plain codec version 1.
            return decode_message(payload)
        _version, n_releases = _V2_PREAMBLE.unpack_from(payload, 0)
        offset = _V2_PREAMBLE.size
        for _ in range(n_releases):
            (slot,) = _U32.unpack_from(payload, offset)
            offset += _U32.size
            self.send_ring.release(slot)
        (n_arrays,) = _U32.unpack_from(payload, offset)
        offset += _U32.size
        arrays: "List[np.ndarray]" = []
        for _ in range(n_arrays):
            (kind,) = _KIND.unpack_from(payload, offset)
            offset += _KIND.size
            descr, shape, nbytes, offset = _read_descriptor(payload, offset)
            if kind == _INLINE:
                if offset + nbytes > len(payload):
                    raise ValueError("array segment overruns the frame")
                arr = np.frombuffer(
                    payload[offset : offset + nbytes], dtype=np.dtype(descr)
                ).reshape(shape)
                offset += nbytes
            elif kind == _SLOT:
                (slot,) = _U32.unpack_from(payload, offset)
                offset += _U32.size
                arr = self.recv_ring.view(slot, descr, shape, nbytes)
                self._to_release.append(slot)
            else:
                raise ValueError(f"unknown array kind {kind}")
            arrays.append(arr)
        return unpickle_skeleton(payload[offset:], arrays)

    def occupancy(self) -> float:
        """The send ring's in-use fraction (the backpressure signal)."""
        return self.send_ring.occupancy()

    def close(self) -> None:
        super().close()
        # Detach only — unlinking is the creator transport's job.
        self.send_ring.close()
        self.recv_ring.close()


_DESC_FIXED = struct.Struct(">B")
_DESC_U8 = struct.Struct(">B")
_DESC_U64 = struct.Struct(">Q")


def _read_descriptor(payload: memoryview, offset: int):
    """Parse one array descriptor (shared with the framed codec)."""
    (descr_len,) = _DESC_FIXED.unpack_from(payload, offset)
    offset += _DESC_FIXED.size
    descr = bytes(payload[offset : offset + descr_len]).decode("ascii")
    offset += descr_len
    (ndim,) = _DESC_U8.unpack_from(payload, offset)
    offset += _DESC_U8.size
    shape = []
    for _ in range(ndim):
        (dim,) = _DESC_U64.unpack_from(payload, offset)
        offset += _DESC_U64.size
        shape.append(dim)
    (nbytes,) = _DESC_U64.unpack_from(payload, offset)
    offset += _DESC_U64.size
    return descr, shape, nbytes, offset
