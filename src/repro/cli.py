"""Command-line interface.

Subcommands::

    python -m repro models                       # list the zoo
    python -m repro describe vgg16               # architecture summary
    python -m repro plan vgg16 --devices 8 --freq 600 [--save plan.json]
    python -m repro compare yolov2 --devices 8 --freq 600
    python -m repro simulate vgg16 --load 1.2 --horizon 600
    python -m repro sim vgg16 --topology star --arrivals flash-crowd
    python -m repro timeline vgg16 --devices 8
    python -m repro trace vgg16 --devices 4 --frames 2 --backend both
    python -m repro serve vgg16 --hw 64 --load 0.7 --frames 200
    python -m repro fleet --tenant cam:vgg16:2.0:5.0 --tenant iot:resnet18:6.0:1.5
    python -m repro gap resnet34 --freqs 1500,900,600

Frequencies are per-device MHz; ``--freqs`` takes a comma list for a
heterogeneous cluster and overrides ``--devices/--freq``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro.adaptive.switcher import build_apico_switcher
from repro.cluster.device import Cluster, heterogeneous_cluster, pi_cluster
from repro.core.plan import plan_cost
from repro.core.serialize import dump_plan
from repro.cost.comm import NetworkModel
from repro.models.zoo import available_models, get_model
from repro.report import render_plan, render_timeline
from repro.schemes.early_fused import EarlyFusedScheme
from repro.schemes.layer_wise import LayerWiseScheme
from repro.schemes.optimal_fused import OptimalFusedScheme
from repro.schemes.pico import PicoScheme
from repro.workload.arrivals import poisson_arrivals

__all__ = ["main", "build_parser"]


def _cluster_from_args(args: argparse.Namespace) -> Cluster:
    if args.freqs:
        freqs = [float(f) for f in args.freqs.split(",")]
        return heterogeneous_cluster(freqs)
    return pi_cluster(args.devices, args.freq)


def _add_planner_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--planner", choices=["greedy", "exact"], default="greedy",
        help="pipeline planner: greedy = Algorithm 1+2 (default), exact "
             "= branch-and-bound heterogeneous search (pico scheme, "
             "small clusters only)",
    )


def _scheme_from_args(args: argparse.Namespace):
    """The scheme instance for ``--scheme`` honouring ``--planner``."""
    from repro.schemes import get_scheme

    if getattr(args, "planner", "greedy") == "exact":
        if args.scheme.strip().lower() != "pico":
            raise SystemExit(
                "--planner exact replaces the PICO pipeline planner; "
                "it does not apply to --scheme " + args.scheme
            )
        from repro.core.exact import ExactScheme

        return ExactScheme()
    return get_scheme(args.scheme)


def _add_cluster_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--devices", type=int, default=8, help="device count")
    parser.add_argument("--freq", type=float, default=600.0, help="CPU MHz")
    parser.add_argument(
        "--freqs", type=str, default="",
        help="comma list of per-device MHz (heterogeneous cluster)",
    )
    parser.add_argument("--mbps", type=float, default=50.0, help="WLAN bandwidth")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="PICO pipelined edge inference (ICDCS'21)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list available models")

    p = sub.add_parser("describe", help="print a model's architecture")
    p.add_argument("model")

    p = sub.add_parser("plan", help="plan a pipeline")
    p.add_argument("model")
    _add_cluster_args(p)
    p.add_argument("--scheme", type=str, default="pico",
                   help="scheme name from the registry "
                        "(pico, lw, efl, ofl, iop)")
    p.add_argument("--t-lim", type=float, default=0.0,
                   help="pipeline latency bound in seconds (0 = none, "
                        "pico only)")
    p.add_argument("--save", type=str, default="", help="write plan JSON here")
    p.add_argument("--memory", action="store_true",
                   help="print per-device peak memory")

    p = sub.add_parser("compare", help="compare all four schemes")
    p.add_argument("model")
    _add_cluster_args(p)

    p = sub.add_parser("simulate", help="simulate Poisson workload latencies")
    p.add_argument("model")
    _add_cluster_args(p)
    p.add_argument("--load", type=float, default=1.0,
                   help="arrival rate as a fraction of EFL capacity")
    p.add_argument("--horizon", type=float, default=600.0, help="seconds")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "sim",
        help="scenario simulator: multi-hop topologies, arrival "
             "processes, device churn",
    )
    p.add_argument("model")
    _add_cluster_args(p)
    p.add_argument("--scheme", type=str, default="pico",
                   help="scheme name from the registry "
                        "(pico, lw, efl, ofl, iop)")
    _add_planner_arg(p)
    p.add_argument(
        "--topology", choices=["one-link", "star", "mesh", "fat-tree"],
        default="one-link",
        help="network shape; one-link is the classic shared WLAN",
    )
    p.add_argument("--contended", action="store_true",
                   help="one-link only: serialise every stage's transfer "
                        "on the shared medium (802.11-style token)")
    p.add_argument("--latency-ms", type=float, default=0.0,
                   help="per-link latency for multi-hop topologies")
    p.add_argument("--arrivals", type=str, default="poisson",
                   help="arrival process from the workload registry "
                        "(poisson, uniform, saturation, day-night, "
                        "diurnal, flash-crowd, trace-replay)")
    p.add_argument("--rate", type=float, default=0.0,
                   help="base arrival rate in tasks/s "
                        "(0 = --load of the plan's 1/period)")
    p.add_argument("--load", type=float, default=0.7,
                   help="base rate as a fraction of the plan's capacity")
    p.add_argument("--peak", type=float, default=0.0,
                   help="peak rate for diurnal/flash-crowd/day-night "
                        "(0 = 4x the base rate)")
    p.add_argument("--horizon", type=float, default=60.0, help="seconds")
    p.add_argument("--tasks", type=int, default=0,
                   help="count bound for poisson/saturation/trace-replay "
                        "(0 = horizon-bound; saturation defaults to 40)")
    p.add_argument("--trace", type=str, default="",
                   help="submit-time file for --arrivals trace-replay "
                        "(one float per line, # comments)")
    p.add_argument(
        "--churn", action="append", default=[],
        metavar="DEVICE:TIME[:REJOIN]",
        help="DEVICE leaves at TIME seconds and, with :REJOIN, comes "
             "back REJOIN seconds later; each change re-plans the "
             "survivors (repeatable)",
    )
    p.add_argument("--capacity", type=int, default=0,
                   help="admission queue bound (0 = unbounded)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--stats", action="store_true",
                   help="constant-memory counters instead of per-task "
                        "records (the million-request mode)")

    p = sub.add_parser("timeline", help="draw the pipeline Gantt chart")
    p.add_argument("model")
    _add_cluster_args(p)
    p.add_argument("--tasks", type=int, default=6)

    p = sub.add_parser(
        "trace", help="run frames through the runtime core and print traces"
    )
    p.add_argument("model")
    _add_cluster_args(p)
    p.add_argument("--frames", type=int, default=2, help="frames to run")
    p.add_argument(
        "--backend",
        choices=["inproc", "sim", "shm", "both", "all"],
        default="both",
        help="transport backend (both = inproc+sim, all = inproc+sim+shm; "
        "multi-backend runs diff canonical traces)",
    )
    p.add_argument("--hw", type=int, default=0,
                   help="override input resolution (0 = model default)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--scheme", type=str, default="pico",
                   help="scheme name from the registry "
                        "(pico, lw, efl, ofl, iop)")
    p.add_argument(
        "--crash", action="append", default=[], metavar="DEVICE:FRAME",
        help="inject a crash: kill DEVICE from frame FRAME on "
             "(repeatable); recovery events land in the printed trace",
    )

    p = sub.add_parser(
        "serve", help="serve a frame stream through the pipelined runtime"
    )
    p.add_argument("model")
    _add_cluster_args(p)
    p.add_argument("--scheme", type=str, default="pico",
                   help="scheme name from the registry "
                        "(pico, lw, efl, ofl, iop)")
    _add_planner_arg(p)
    p.add_argument("--hw", type=int, default=0,
                   help="override input resolution (0 = model default)")
    p.add_argument(
        "--backend", choices=["sim", "inproc"], default="sim",
        help="sim = virtual clock (default), inproc = real threaded run",
    )
    p.add_argument("--rate", type=float, default=0.0,
                   help="Poisson arrival rate in frames/s (0 = use --load)")
    p.add_argument("--load", type=float, default=0.7,
                   help="arrival rate as a fraction of the plan's 1/period")
    p.add_argument("--horizon", type=float, default=0.0,
                   help="generate Poisson arrivals over this many seconds "
                        "(0 = exactly --frames arrivals)")
    p.add_argument("--frames", type=int, default=64, help="frame count")
    p.add_argument("--capacity", type=int, default=8,
                   help="admission queue bound (frames in system)")
    p.add_argument("--policy", choices=["shed", "block"], default="shed",
                   help="full-queue behaviour: shed or backpressure")
    p.add_argument("--max-batch", type=int, default=1,
                   help="cross-frame micro-batching: coalesce up to this "
                        "many queued frames into one batched pass per stage")
    p.add_argument("--batch-timeout", type=float, default=0.0,
                   help="seconds a forming batch holds the entrance open "
                        "for stragglers (0 = take only what is queued)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--adaptive", action="store_true",
                   help="APICO switching fed by the measured queue depth "
                        "(sim backend only)")
    p.add_argument("--no-compute", action="store_true",
                   help="sim backend: skip kernels, timing only")

    p = sub.add_parser(
        "fleet",
        help="co-schedule several tenants' pipelines on one shared pool",
    )
    _add_cluster_args(p)
    p.add_argument(
        "--tenant", action="append", default=[],
        metavar="NAME:MODEL:RATE:SLO[:PRIORITY]",
        help="a tenant request class (repeatable): model from the zoo, "
             "Poisson rate in frames/s, latency SLO in seconds, optional "
             "placement priority (higher places first)",
    )
    p.add_argument("--scheme", type=str, default="pico",
                   help="scheme used for every tenant's pipeline "
                        "(pico, lw, efl, ofl, iop)")
    _add_planner_arg(p)
    p.add_argument("--hw", type=int, default=0,
                   help="override input resolution for every model "
                        "(0 = model defaults)")
    p.add_argument("--frames", type=int, default=32,
                   help="frames per tenant")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--compute", action="store_true",
                   help="run real kernels in the virtual clock "
                        "(default: timing only)")

    p = sub.add_parser(
        "gap",
        help="greedy vs exact planner: the optimality gap on one cell",
    )
    p.add_argument("model")
    _add_cluster_args(p)
    p.add_argument("--period-bound", type=float, default=0.0,
                   help="prune the search against this period in seconds "
                        "(0 = none; the incumbent greedy plan is always "
                        "returned when everything prunes)")

    p = sub.add_parser(
        "experiment", help="run a paper experiment harness (fast config)"
    )
    p.add_argument(
        "which",
        choices=["fig2", "fig4", "fig8", "fig10", "fig12", "fig13",
                 "table1", "table2"],
    )
    p.add_argument("--model", type=str, default="vgg16",
                   help="model for fig2/fig8/fig10")
    p.add_argument("--csv", type=str, default="", help="also write CSV here")

    p = sub.add_parser(
        "report", help="regenerate the whole evaluation as one document"
    )
    p.add_argument("--out", type=str, default="", help="write markdown here")
    p.add_argument("--full", action="store_true",
                   help="paper-scale sweeps (slow) instead of fast config")
    return parser


def _cmd_models() -> int:
    for name in available_models():
        print(name)
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    print(get_model(args.model).describe())
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.schemes import get_scheme

    model = get_model(args.model)
    cluster = _cluster_from_args(args)
    network = NetworkModel.from_mbps(args.mbps)
    kwargs = {}
    if args.t_lim > 0 and args.scheme.lower() == "pico":
        kwargs["t_lim"] = args.t_lim
    scheme = get_scheme(args.scheme, **kwargs)
    plan = scheme.plan(model, cluster, network)
    print(render_plan(model, plan, network))
    if args.memory:
        from repro.cost.memory import plan_memory

        print(f"\n{'device':>16s} {'weights':>10s} {'activations':>12s} {'total':>10s}")
        for entry in plan_memory(model, plan):
            print(
                f"{entry.device_name:>16s} "
                f"{entry.weight_bytes / 1e6:>9.2f}M "
                f"{entry.activation_bytes / 1e6:>11.2f}M "
                f"{entry.total_bytes / 1e6:>9.2f}M"
            )
    if args.save:
        dump_plan(plan, args.save)
        print(f"\nplan written to {args.save}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    model = get_model(args.model)
    cluster = _cluster_from_args(args)
    network = NetworkModel.from_mbps(args.mbps)
    print(
        f"{'scheme':>7s} {'stages':>7s} {'period':>9s} {'latency':>9s} "
        f"{'thpt/min':>9s}"
    )
    for scheme in (
        LayerWiseScheme(), EarlyFusedScheme(), OptimalFusedScheme(), PicoScheme()
    ):
        plan = scheme.plan(model, cluster, network)
        cost = plan_cost(model, plan, network)
        print(
            f"{scheme.name:>7s} {plan.n_stages:>7d} {cost.period:>8.2f}s "
            f"{cost.latency:>8.2f}s {60 * cost.throughput:>9.1f}"
        )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    model = get_model(args.model)
    cluster = _cluster_from_args(args)
    network = NetworkModel.from_mbps(args.mbps)
    efl_plan = EarlyFusedScheme().plan(model, cluster, network)
    capacity = plan_cost(model, efl_plan, network).throughput
    rate = args.load * capacity
    arrivals = poisson_arrivals(
        rate, args.horizon, np.random.default_rng(args.seed)
    )
    print(
        f"load {args.load:.0%} of EFL capacity "
        f"({60 * rate:.1f} tasks/min, {len(arrivals)} tasks)\n"
    )
    print(f"{'scheme':>7s} {'avg lat':>9s} {'p95 lat':>9s}")
    from repro import simulate

    for name, scheme in (
        ("EFL", EarlyFusedScheme()),
        ("OFL", OptimalFusedScheme()),
        ("PICO", PicoScheme()),
    ):
        sim = simulate(
            model, scheme, cluster, network=network, arrivals=arrivals
        )
        print(
            f"{name:>7s} {sim.avg_latency:>8.2f}s "
            f"{sim.percentile_latency(95):>8.2f}s"
        )
    switcher = build_apico_switcher(model, cluster, network)
    sim = simulate(model, switcher, network=network, arrivals=arrivals)
    usage = ", ".join(f"{k}:{v}" for k, v in sorted(sim.plan_usage.items()))
    print(
        f"{'APICO':>7s} {sim.avg_latency:>8.2f}s "
        f"{sim.percentile_latency(95):>8.2f}s  ({usage})"
    )
    print(
        "\nnote: this compares the schemes on the classic one-link WLAN; "
        "`repro sim` runs the\nfull scenario simulator (multi-hop "
        "topologies, arrival processes, device churn)."
    )
    return 0


def _parse_churn(specs: "Sequence[str]"):
    """``DEVICE:TIME[:REJOIN]`` specs → ChurnEvent tuple."""
    from repro.sim import ChurnEvent

    events = []
    for spec in specs:
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            raise SystemExit(
                f"--churn expects DEVICE:TIME[:REJOIN], got {spec!r}"
            )
        try:
            leave_at = float(parts[1])
            events.append(ChurnEvent(leave_at, parts[0], "leave"))
            if len(parts) == 3:
                events.append(
                    ChurnEvent(leave_at + float(parts[2]), parts[0], "join")
                )
        except ValueError as exc:
            raise SystemExit(f"--churn {spec!r}: {exc}") from None
    return tuple(sorted(events, key=lambda e: (e.time, e.device)))


def _build_arrival_process(args: argparse.Namespace, rate: float):
    """Map the ``sim`` flags onto a registry arrival process."""
    from repro.workload import available_arrivals, get_arrivals

    name = args.arrivals.strip().lower().replace("_", "-").replace(" ", "-")
    peak = args.peak if args.peak > 0 else 4.0 * rate
    horizon = args.horizon
    if name == "poisson":
        if args.tasks > 0:
            return get_arrivals(name, rate=rate, n_tasks=args.tasks)
        return get_arrivals(name, rate=rate, horizon_s=horizon)
    if name == "uniform":
        return get_arrivals(name, rate=rate, horizon_s=horizon)
    if name == "saturation":
        return get_arrivals(name, n_tasks=args.tasks or 40)
    if name == "day-night":
        return get_arrivals(
            name, light_rate=rate, heavy_rate=peak,
            phase_duration_s=horizon / 2.0,
        )
    if name == "diurnal":
        return get_arrivals(
            name, base_rate=rate, peak_rate=peak,
            period_s=horizon, horizon_s=horizon,
        )
    if name == "flash-crowd":
        return get_arrivals(
            name, base_rate=rate, peak_rate=peak,
            t_start=horizon / 4.0, ramp_s=horizon / 8.0,
            hold_s=horizon / 4.0, decay_s=horizon / 8.0,
            horizon_s=horizon,
        )
    if name == "trace-replay":
        if not args.trace:
            raise SystemExit("--arrivals trace-replay needs --trace FILE")
        return get_arrivals(
            name, source=args.trace, n_tasks=args.tasks or None
        )
    raise SystemExit(
        f"--arrivals {args.arrivals!r} has no CLI mapping; available: "
        + ", ".join(n for n in available_arrivals() if n != "composite")
    )


def _cmd_sim(args: argparse.Namespace) -> int:
    from repro.runtime.trace import Tracer
    from repro.sim import SimResult, Topology, simulate_scenario

    model = get_model(args.model)
    cluster = _cluster_from_args(args)
    names = [d.name for d in cluster]
    latency_s = args.latency_ms / 1e3
    if args.contended and args.topology != "one-link":
        raise SystemExit("--contended only applies to --topology one-link")
    if args.topology == "one-link":
        topology = Topology.bus(
            NetworkModel.from_mbps(args.mbps, latency_s),
            contended=args.contended,
        )
    elif args.topology == "star":
        topology = Topology.star(names, mbps=args.mbps, latency_s=latency_s)
    elif args.topology == "mesh":
        topology = Topology.mesh(names, mbps=args.mbps, latency_s=latency_s)
    else:
        topology = Topology.fat_tree(
            names, mbps=args.mbps, latency_s=latency_s
        )
    network = topology.as_network_model()

    scheme = _scheme_from_args(args)
    plan = scheme.plan(model, cluster, network)
    cost = plan_cost(model, plan, network)
    rate = args.rate if args.rate > 0 else args.load / cost.period
    process = _build_arrival_process(args, rate)
    churn = _parse_churn(args.churn)
    tracer = Tracer() if churn else None

    print(
        f"topology {topology.name}: {len(topology.links)} link(s), "
        f"{len(topology.nodes)} node(s)"
        + (f", entry {topology.entry}" if topology.entry else "")
    )
    print(
        f"workload {args.arrivals}: base rate {rate:.2f}/s over "
        f"{args.horizon:g}s "
        f"({args.scheme} period {cost.period:.3f}s on the flat summary)"
    )
    result = simulate_scenario(
        model, scheme, cluster,
        topology=topology, arrivals=process, churn=churn,
        trace=tracer, queue_capacity=args.capacity or None,
        seed=args.seed, keep_records=not args.stats,
    )

    is_full = isinstance(result, SimResult)
    shed = len(result.shed) if is_full else result.shed_count
    print(
        f"served: {result.completed} done, {shed} shed "
        f"of {result.submitted} over {result.makespan:.2f}s "
        f"({result.throughput:.2f}/s)"
    )
    if is_full:
        if result.tasks:
            print(
                f"latency: avg {result.avg_latency:.3f}s, "
                f"p95 {result.percentile_latency(95):.3f}s, "
                f"max {result.max_latency:.3f}s"
            )
        usage = ", ".join(
            f"{k}:{v}" for k, v in sorted(result.plan_usage.items())
        )
        if usage:
            print(f"plan usage: {usage}")
    else:
        print(
            f"latency: avg {result.avg_latency:.3f}s, "
            f"max {result.max_latency:.3f}s  "
            f"({result.n_events} events, constant memory)"
        )
    if tracer is not None:
        from repro.runtime.trace import RECOVERY_KINDS

        recovery = [e for e in tracer.events if e.kind in RECOVERY_KINDS]
        print(f"churn: {len(recovery)} recovery event(s)")
        for event in recovery:
            print(f"  t={event.start:8.2f}s {event.kind:>12s} {event.device}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import (
        fig02_layer_profile,
        fig04_fused_redundancy,
        fig08_capacity,
        fig10_latency,
        fig12_speedup,
        fig13_pico_vs_bfs,
        table1_utilization,
        table2_optimization_cost,
    )
    from repro.experiments.export import rows_for, write_csv

    if args.which == "fig2":
        result = fig02_layer_profile.run(args.model)
    elif args.which == "fig4":
        result = fig04_fused_redundancy.run()
    elif args.which == "fig8":
        result = fig08_capacity.run(
            args.model, freqs_mhz=(600.0,), device_counts=(2, 4, 8),
            sim_tasks=10,
        )
    elif args.which == "fig10":
        result = fig10_latency.run(
            args.model, workload_fractions=(0.4, 0.8, 1.2), horizon_s=300.0
        )
    elif args.which == "fig12":
        result = fig12_speedup.run(freqs_mhz=(600.0,), device_counts=(4, 8))
    elif args.which == "fig13":
        result = fig13_pico_vs_bfs.run(sim_tasks=30, bfs_deadline_s=60.0)
    elif args.which == "table1":
        result = table1_utilization.run(sim_tasks=15)
    else:
        result = table2_optimization_cost.run(
            grid=((4, 4), (8, 4), (8, 6)), bfs_budget_s=30.0
        )
    print(result.format())
    if args.csv:
        write_csv(rows_for(result), args.csv)
        print(f"\nrows written to {args.csv}")
    return 0


def _parse_crashes(specs: "Sequence[str]"):
    """``DEVICE:FRAME`` specs → a FaultSchedule (None when empty)."""
    from repro.runtime.faults import FaultSchedule

    if not specs:
        return None
    schedule = FaultSchedule()
    for spec in specs:
        device, sep, frame = spec.rpartition(":")
        if not sep or not device:
            raise SystemExit(
                f"--crash expects DEVICE:FRAME, got {spec!r}"
            )
        try:
            schedule = schedule.crash(device, int(frame))
        except ValueError as exc:
            raise SystemExit(f"--crash {spec!r}: {exc}") from None
    return schedule


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.nn.executor import Engine
    from repro.runtime.core import (
        InProcTransport,
        PipelineSession,
        SimTransport,
    )
    from repro.runtime.faults import RuntimeConfig
    from repro.runtime.trace import Tracer, diff_traces, format_timeline
    from repro.schemes import get_scheme

    model = (
        get_model(args.model, input_hw=args.hw) if args.hw
        else get_model(args.model)
    )
    cluster = _cluster_from_args(args)
    network = NetworkModel.from_mbps(args.mbps)
    plan = get_scheme(args.scheme).plan(model, cluster, network)
    engine = Engine(model, seed=args.seed)
    rng = np.random.default_rng(args.seed)
    frames = [
        rng.standard_normal(model.input_shape).astype(np.float32)
        for _ in range(args.frames)
    ]
    faults = _parse_crashes(args.crash)
    config = RuntimeConfig() if faults is not None else None

    backends = []
    if args.backend in ("inproc", "both", "all"):
        backends.append(("inproc", InProcTransport(engine, faults=faults)))
    if args.backend in ("sim", "both", "all"):
        backends.append(("sim", SimTransport(engine, network, faults=faults)))
    if args.backend in ("shm", "all"):
        if faults is not None:
            raise SystemExit(
                "--crash is schedule-injected (inproc/sim backends only); "
                "the shm backend crashes real worker processes via the "
                "fault tests instead"
            )
        from repro.runtime.coordinator import ShmTransport

        backends.append(("shm", ShmTransport(model, engine.weights)))

    runs = {}
    for name, transport in backends:
        tracer = Tracer()
        session = PipelineSession.from_plan(
            model, plan, transport, tracer, config
        )
        outputs = session.run_batch(frames)
        session.close()
        runs[name] = (outputs, tracer.events)
        print(f"--- {name} backend ({len(tracer.events)} events) ---")
        print(format_timeline(tracer.events))
        print()

    if len(runs) > 1:
        names = list(runs)
        base, (out_a, ev_a) = names[0], runs[names[0]]
        failed = False
        for other in names[1:]:
            out_b, ev_b = runs[other]
            mismatch = diff_traces(ev_a, ev_b)
            exact = all(
                np.array_equal(a, b) for a, b in zip(out_a, out_b)
            )
            if mismatch or not exact:
                failed = True
                print(f"{base} vs {other}:")
                for line in mismatch:
                    print(line)
                if not exact:
                    print("outputs differ between backends")
        if failed:
            return 1
        print("backends agree: identical outputs, identical canonical traces")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.adaptive.queueing import stable, validate_md1
    from repro.nn.executor import Engine
    from repro.runtime.core import InProcTransport, SimTransport
    from repro.serve import PipelineServer, ServerConfig
    from repro.workload.arrivals import poisson_arrivals, poisson_arrivals_count

    model = (
        get_model(args.model, input_hw=args.hw) if args.hw
        else get_model(args.model)
    )
    cluster = _cluster_from_args(args)
    network = NetworkModel.from_mbps(args.mbps)
    plan = _scheme_from_args(args).plan(model, cluster, network)
    cost = plan_cost(model, plan, network)
    rate = args.rate if args.rate > 0 else args.load / cost.period
    rng = np.random.default_rng(args.seed)
    if args.horizon > 0:
        arrivals = poisson_arrivals(rate, args.horizon, rng)
    else:
        arrivals = poisson_arrivals_count(rate, args.frames, rng)
    if not arrivals:
        print("no arrivals in the horizon; nothing to serve")
        return 0

    engine = Engine(model, seed=args.seed)
    switcher = None
    if args.backend == "sim":
        transport = SimTransport(
            engine, network, compute=not args.no_compute
        )
        if args.adaptive:
            switcher = build_apico_switcher(model, cluster, network)
    else:
        if args.adaptive:
            raise SystemExit("--adaptive needs --backend sim")
        if args.no_compute:
            raise SystemExit("--no-compute needs --backend sim")
        transport = InProcTransport(engine)
    config = ServerConfig(
        queue_capacity=args.capacity, policy=args.policy,
        max_batch=args.max_batch, batch_timeout=args.batch_timeout,
    )
    server = PipelineServer.from_plan(
        model, plan, transport, config=config, switcher=switcher
    )
    try:
        result = server.serve(len(arrivals), arrivals=arrivals)
    finally:
        server.close()

    print(
        f"{args.scheme} plan: {plan.n_stages} stage(s), "
        f"period {cost.period:.4f}s, latency {cost.latency:.4f}s"
    )
    print(
        f"offered: {len(arrivals)} frames at {rate:.2f}/s "
        f"(utilisation {rate * cost.period:.2f}), "
        f"capacity {args.capacity}, policy {args.policy}"
    )
    print(
        f"served: {len(result.completed)} done, {len(result.shed)} shed, "
        f"{len(result.failed)} failed over {result.makespan:.2f}s"
    )
    print(
        f"throughput: {result.throughput:.2f}/s overall, "
        f"{result.steady_throughput(warmup=plan.n_stages):.2f}/s steady "
        f"(1/period = {1.0 / cost.period:.2f}/s)"
    )
    if result.sojourns:
        print(
            "sojourn: "
            f"mean {result.mean_sojourn:.4f}s, "
            f"p50 {result.percentile_sojourn(50):.4f}s, "
            f"p95 {result.percentile_sojourn(95):.4f}s, "
            f"p99 {result.percentile_sojourn(99):.4f}s"
        )
    if args.max_batch > 1 and result.batch_sizes:
        print(
            "batching: "
            f"mean {result.mean_batch:.2f} frames/batch, "
            f"p50 {result.percentile_batch(50):.0f}, "
            f"p95 {result.percentile_batch(95):.0f} "
            f"(max {args.max_batch}, timeout {args.batch_timeout:g}s)"
        )
    if switcher is not None:
        usage = ", ".join(
            f"{k}:{v}" for k, v in sorted(result.plan_usage.items())
        )
        print(f"plan usage: {usage}")
    elif (
        args.max_batch == 1
        and result.sojourns
        and stable(cost.period, rate)
        and not result.shed
    ):
        check = validate_md1(
            result.sojourns, cost.period, cost.latency, rate
        )
        print(
            "Theorem 2 (M/D/1): "
            f"predicted {check['predicted_mean']:.4f}s, "
            f"measured {check['measured_mean']:.4f}s "
            f"({check['rel_error']:.1%} off)"
        )
    return 0


def _parse_tenants(specs: "Sequence[str]"):
    """``NAME:MODEL:RATE:SLO[:PRIORITY]`` specs → TenantClass list."""
    from repro.fleet import TenantClass

    tenants = []
    for spec in specs:
        parts = spec.split(":")
        if len(parts) not in (4, 5):
            raise SystemExit(
                f"--tenant expects NAME:MODEL:RATE:SLO[:PRIORITY], "
                f"got {spec!r}"
            )
        try:
            tenants.append(
                TenantClass(
                    name=parts[0],
                    model=parts[1],
                    rate=float(parts[2]),
                    slo=float(parts[3]),
                    priority=int(parts[4]) if len(parts) == 5 else 0,
                )
            )
        except ValueError as exc:
            raise SystemExit(f"--tenant {spec!r}: {exc}") from None
    return tenants


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import FleetScheduler, FleetServer, ModelRegistry
    from repro.runtime.core import SimTransport
    from repro.workload.arrivals import poisson_arrivals_count

    if not args.tenant:
        raise SystemExit("fleet needs at least one --tenant spec")
    tenants = _parse_tenants(args.tenant)
    cluster = _cluster_from_args(args)
    network = NetworkModel.from_mbps(args.mbps)

    registry = ModelRegistry()
    for tenant in tenants:
        model = (
            get_model(tenant.model, input_hw=args.hw) if args.hw
            else get_model(tenant.model)
        )
        registry.register(tenant.model, model, seed=args.seed)

    scheduler = FleetScheduler(registry, cluster, network)
    parent = SimTransport(
        registry.get(tenants[0].model).engine, network,
        compute=args.compute,
    )
    rng = np.random.default_rng(args.seed)
    schemes = {t.name: _scheme_from_args(args) for t in tenants}
    with FleetServer(registry, scheduler, parent) as fleet:
        placements = fleet.admit(tenants, schemes=schemes)
        print(
            f"{'tenant':>10s} {'model':>10s} {'devices':>24s} "
            f"{'period':>9s} {'est lat':>9s} {'SLO':>7s}"
        )
        for tenant in tenants:
            pl = placements[tenant.name]
            mark = "ok" if pl.meets_slo else "MISS"
            print(
                f"{tenant.name:>10s} {tenant.model:>10s} "
                f"{','.join(pl.devices):>24s} {pl.period:>8.3f}s "
                f"{pl.estimate:>8.3f}s {mark:>7s}"
            )
        workloads = {
            t.name: (
                args.frames,
                poisson_arrivals_count(t.rate, args.frames, rng),
            )
            for t in tenants
        }
        result = fleet.serve(workloads)
    print()
    attainment = result.attainment()
    for tenant in tenants:
        tr = result.tenants[tenant.name]
        print(
            f"{tenant.name}: {len(tr.result.completed)} done, "
            f"{len(tr.result.shed)} shed, "
            f"{attainment[tenant.name]:.0%} in SLO, "
            f"goodput {tr.goodput:.2f}/s"
        )
    print(
        f"fleet: {result.completed} completions "
        f"({result.in_slo} in SLO) over {result.makespan:.2f}s — "
        f"aggregate goodput {result.aggregate_goodput:.2f}/s"
    )
    return 0


def _cmd_gap(args: argparse.Namespace) -> int:
    import math
    import time

    from repro.core.exact import plan_exact

    model = get_model(args.model)
    cluster = _cluster_from_args(args)
    network = NetworkModel.from_mbps(args.mbps)
    greedy_plan = PicoScheme().plan(model, cluster, network)
    greedy = plan_cost(model, greedy_plan, network)
    bound = args.period_bound if args.period_bound > 0 else math.inf
    t0 = time.perf_counter()
    exact = plan_exact(model, cluster, network, period_bound=bound)
    search_s = time.perf_counter() - t0
    print(
        f"greedy (Algorithm 1+2): period {greedy.period:.6f}s over "
        f"{greedy_plan.n_stages} stage(s)"
    )
    print(
        f"exact (branch-and-bound): period {exact.period:.6f}s over "
        f"{exact.n_stages} stage(s)  "
        f"[{exact.nodes} nodes, {exact.pruned} pruned, {search_s:.3f}s]"
    )
    print(f"optimality gap: {exact.gap:.2%}")
    if not exact.improved:
        print("greedy plan is optimal for this cell")
    else:
        for stage in exact.stages:
            devices = ",".join(d.name for d in stage.devices)
            print(
                f"  units [{stage.start}, {stage.end}) on {devices}: "
                f"{stage.cost:.6f}s"
            )
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    model = get_model(args.model)
    cluster = _cluster_from_args(args)
    network = NetworkModel.from_mbps(args.mbps)
    plan = PicoScheme().plan(model, cluster, network)
    print(render_timeline(model, plan, network, n_tasks=args.tasks))
    return 0


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "models":
        return _cmd_models()
    if args.command == "describe":
        return _cmd_describe(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "sim":
        return _cmd_sim(args)
    if args.command == "timeline":
        return _cmd_timeline(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "gap":
        return _cmd_gap(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "report":
        from repro.experiments.full_report import FAST, FULL, generate_report

        text = generate_report(FULL if args.full else FAST)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text)
            print(f"report written to {args.out}")
        else:
            print(text)
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
