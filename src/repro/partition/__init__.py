"""Feature-map partitioning: region algebra, strips, grids, fused tiles."""

from repro.partition.fused import (
    ChainTiles,
    LayerTile,
    chain_backprop,
    chain_forward_hw,
    segment_input_region,
    segment_owned_region,
    unit_input_region,
    unit_owned_input,
)
from repro.partition.grid import grid_partition, grid_shape_for, weighted_grid_partition
from repro.partition.regions import (
    EMPTY_INTERVAL,
    Interval,
    PaddedInterval,
    PaddedRegion,
    Region,
    out_size,
    owned_interval,
    receptive_interval,
    receptive_region,
)
from repro.partition.strips import (
    equal_partition,
    proportional_partition,
    strip_regions,
    weighted_partition,
)

__all__ = [
    "ChainTiles",
    "EMPTY_INTERVAL",
    "Interval",
    "LayerTile",
    "PaddedInterval",
    "PaddedRegion",
    "Region",
    "chain_backprop",
    "chain_forward_hw",
    "equal_partition",
    "grid_partition",
    "grid_shape_for",
    "out_size",
    "owned_interval",
    "proportional_partition",
    "receptive_interval",
    "receptive_region",
    "segment_input_region",
    "segment_owned_region",
    "strip_regions",
    "unit_input_region",
    "unit_owned_input",
    "weighted_grid_partition",
    "weighted_partition",
]
