"""Strip partitioners for feature-map rows.

The paper (like MoDNN) partitions feature maps into horizontal strips.
Homogeneous stages use an equal split (§IV-A1); heterogeneous stages use
a capacity-weighted *divide-and-conquer* split (Algorithm 2, line 10).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.partition.regions import Interval, Region

__all__ = [
    "equal_partition",
    "weighted_partition",
    "proportional_partition",
    "strip_regions",
]


def equal_partition(length: int, parts: int) -> "List[Interval]":
    """Split ``[0, length)`` into ``parts`` contiguous intervals whose
    sizes differ by at most one.  If ``parts > length`` the surplus
    intervals are empty (a device with an empty strip simply idles)."""
    if parts <= 0:
        raise ValueError("parts must be positive")
    if length < 0:
        raise ValueError("length must be non-negative")
    base, extra = divmod(length, parts)
    intervals = []
    pos = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        intervals.append(Interval(pos, pos + size))
        pos += size
    return intervals


def proportional_partition(length: int, weights: "Sequence[float]") -> "List[Interval]":
    """Largest-remainder proportional split of ``[0, length)``."""
    if not weights:
        raise ValueError("weights must be non-empty")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    total = float(sum(weights))
    if total == 0:
        return equal_partition(length, len(weights))
    quotas = [length * w / total for w in weights]
    sizes = [int(q) for q in quotas]
    remainder = length - sum(sizes)
    order = sorted(range(len(weights)), key=lambda i: quotas[i] - sizes[i], reverse=True)
    for i in order[:remainder]:
        sizes[i] += 1
    intervals = []
    pos = 0
    for size in sizes:
        intervals.append(Interval(pos, pos + size))
        pos += size
    return intervals


def weighted_partition(length: int, weights: "Sequence[float]") -> "List[Interval]":
    """Capacity-weighted divide-and-conquer split (paper Algorithm 2).

    Recursively halves the device list at the point that balances total
    weight, splitting the row range proportionally; degenerates to the
    proportional split for power-of-two groups but matches the paper's
    construction exactly.
    """
    if not weights:
        raise ValueError("weights must be non-empty")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    result: "List[Interval]" = [Interval(0, 0)] * len(weights)

    def solve(lo: int, hi: int, start: int, end: int) -> None:
        n = hi - lo
        if n == 1:
            result[lo] = Interval(start, end)
            return
        total = sum(weights[lo:hi])
        if total == 0:
            parts = equal_partition(end - start, n)
            for i, iv in enumerate(parts):
                result[lo + i] = iv.shift(start)
            return
        # Balance point: first split with left weight >= half, but keep
        # at least one device on each side.
        mid = lo + 1
        acc = weights[lo]
        while mid < hi - 1 and acc < total / 2:
            acc += weights[mid]
            mid += 1
        left_weight = sum(weights[lo:mid])
        cut = start + round((end - start) * left_weight / total)
        cut = max(start, min(end, cut))
        solve(lo, mid, start, cut)
        solve(mid, hi, cut, end)

    solve(0, len(weights), 0, length)
    return result


def strip_regions(height: int, width: int, rows: "Sequence[Interval]") -> "List[Region]":
    """Lift row intervals into full-width regions of an ``H×W`` map."""
    if any(iv.end > height for iv in rows):
        raise ValueError("row interval exceeds map height")
    return [Region(iv, Interval(0, width)) for iv in rows]
