"""Fused-segment region propagation.

When a device executes a contiguous layer segment on a tile (fused-layer
execution, DeepThings-style), the input region it needs grows
recursively with every layer — this is the redundant-computation source
the paper optimises against.  This module back-propagates output regions
through chains, blocks and whole unit segments, producing

* the exact input region (+ virtual padding) needed at every layer, and
* the *owned* (non-redundant) stride projection used for redundancy
  accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.models.graph import BlockUnit, LayerUnit, Model, PlanUnit
from repro.models.layers import SpatialLayer
from repro.partition.regions import (
    Interval,
    PaddedRegion,
    Region,
    owned_interval,
    receptive_region,
)

__all__ = [
    "LayerTile",
    "ChainTiles",
    "chain_backprop",
    "chain_forward_hw",
    "unit_input_region",
    "segment_input_region",
    "segment_owned_region",
    "unit_owned_input",
]

_Size2 = Tuple[int, int]


@dataclass(frozen=True)
class LayerTile:
    """One layer's tile geometry inside a fused segment."""

    layer: SpatialLayer
    in_hw: _Size2
    input: PaddedRegion  # what the layer reads (clipped region + pads)
    output: Region  # what the layer produces


@dataclass(frozen=True)
class ChainTiles:
    """Tile geometry for a whole chain, outermost input first."""

    tiles: Tuple[LayerTile, ...]

    @property
    def input(self) -> PaddedRegion:
        return self.tiles[0].input

    @property
    def output(self) -> Region:
        return self.tiles[-1].output


def chain_forward_hw(chain: "Sequence[SpatialLayer]", in_hw: _Size2) -> "List[_Size2]":
    """Per-layer input spatial sizes; entry ``i`` is layer ``i``'s input,
    the final entry is the chain output size."""
    sizes = [in_hw]
    for layer in chain:
        sizes.append(layer.out_spatial(sizes[-1]))
    return sizes


def chain_backprop(
    chain: "Sequence[SpatialLayer]", in_hw: _Size2, out_region: Region
) -> ChainTiles:
    """Back-propagate ``out_region`` (a region of the chain's output map)
    through the chain, yielding each layer's tile geometry."""
    if not chain:
        raise ValueError("chain_backprop needs a non-empty chain")
    sizes = chain_forward_hw(chain, in_hw)
    tiles: "List[LayerTile]" = []
    region = out_region
    for i in range(len(chain) - 1, -1, -1):
        layer = chain[i]
        padded = receptive_region(
            region, layer.kernel_size, layer.stride, layer.padding, sizes[i]
        )
        tiles.append(LayerTile(layer, sizes[i], padded, region))
        region = padded.region
    tiles.reverse()
    return ChainTiles(tuple(tiles))


def unit_input_region(unit: PlanUnit, in_hw: _Size2, out_region: Region) -> Region:
    """Input region a plan unit needs to produce ``out_region``.

    For blocks this is the union over paths (paper §IV-B: per-path
    partitions are combined "into a bigger one").  Identity paths need
    the output region itself.
    """
    if isinstance(unit, LayerUnit):
        return chain_backprop((unit.layer,), in_hw, out_region).input.region
    assert isinstance(unit, BlockUnit)
    union: Optional[Region] = None
    for path in unit.paths:
        if path:
            need = chain_backprop(path, in_hw, out_region).input.region
        else:
            need = out_region  # identity shortcut
        union = need if union is None else union.union_hull(need)
    assert union is not None
    return union


def segment_input_region(
    model: Model, start: int, end: int, out_region: Region
) -> Region:
    """Input region needed at unit ``start``'s input to produce
    ``out_region`` of unit ``end - 1``'s output (units ``[start, end)``)."""
    if not 0 <= start < end <= model.n_units:
        raise ValueError(f"bad segment [{start}, {end}) for {model.n_units} units")
    region = out_region
    for idx in range(end - 1, start - 1, -1):
        _, h, w = model.in_shape(idx)
        region = unit_input_region(model.units[idx], (h, w), region)
    return region


def unit_owned_input(unit: PlanUnit, in_hw: _Size2, out_region: Region) -> Region:
    """Stride-only projection of ``out_region`` onto the unit's input —
    the non-redundant share (no kernel halo)."""
    _ = unit  # stride comes from the unit itself
    sv, sh = unit.total_stride(unit.in_channels, in_hw)
    return Region(
        owned_interval(out_region.rows, sv, in_hw[0]),
        owned_interval(out_region.cols, sh, in_hw[1]),
    )


def segment_owned_region(
    model: Model, start: int, end: int, out_region: Region
) -> Region:
    """Owned projection across a unit segment (cf. redundancy metrics)."""
    if not 0 <= start < end <= model.n_units:
        raise ValueError(f"bad segment [{start}, {end}) for {model.n_units} units")
    region = out_region
    for idx in range(end - 1, start - 1, -1):
        _, h, w = model.in_shape(idx)
        region = unit_owned_input(model.units[idx], (h, w), region)
    return region
