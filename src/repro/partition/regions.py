"""Region algebra for feature-map partitioning.

Feature maps are ``(C, H, W)`` tensors.  A *region* is an axis-aligned
rectangle of the spatial plane, represented with half-open intervals.
Cooperative inference assigns each device a region of a layer's *output*
feature map; computing it requires a (generally larger, overlapping)
region of the *input* feature map — the receptive field.

The paper's Eq. (3) gives the simplified receptive-field recurrence

    h_i = (h_{i+1} - 1) * s_{i+1} + k_{i+1}

which ignores padding and border clipping.  This module implements the
exact arithmetic: intervals are back-propagated through conv/pool layers
in *padded* coordinates, then clipped to the real map bounds, recording
how much virtual zero padding each side of the extracted tile needs.
Region-restricted execution built on these primitives is bit-exact with
full-map inference (see :mod:`repro.nn.tiles`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import out_size

__all__ = [
    "Interval",
    "Region",
    "PaddedInterval",
    "PaddedRegion",
    "EMPTY_INTERVAL",
    "receptive_interval",
    "receptive_region",
    "owned_interval",
    "out_size",
]


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open integer interval ``[start, end)``.

    ``start == end`` denotes the empty interval.  Intervals are ordered
    lexicographically, which gives a stable sort for partitions.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval end {self.end} < start {self.start}")

    def __len__(self) -> int:
        return self.end - self.start

    @property
    def empty(self) -> bool:
        return self.end == self.start

    def shift(self, offset: int) -> "Interval":
        """Translate by ``offset``."""
        return Interval(self.start + offset, self.end + offset)

    def clip(self, lo: int, hi: int) -> "Interval":
        """Intersect with ``[lo, hi)``; an empty result collapses to ``[lo, lo)``."""
        start = max(self.start, lo)
        end = min(self.end, hi)
        if end < start:
            start = end = lo
        return Interval(start, end)

    def intersect(self, other: "Interval") -> "Interval":
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if end < start:
            start = end = 0
        return Interval(start, end)

    def union_hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both (empty operands are ignored)."""
        if self.empty:
            return other
        if other.empty:
            return self
        return Interval(min(self.start, other.start), max(self.end, other.end))

    def contains(self, other: "Interval") -> bool:
        return other.empty or (self.start <= other.start and other.end <= self.end)

    def overlap(self, other: "Interval") -> int:
        """Number of indices shared with ``other``."""
        return max(0, min(self.end, other.end) - max(self.start, other.start))


EMPTY_INTERVAL = Interval(0, 0)


@dataclass(frozen=True)
class Region:
    """A rectangular spatial region: a row interval × a column interval."""

    rows: Interval
    cols: Interval

    @classmethod
    def full(cls, height: int, width: int) -> "Region":
        return cls(Interval(0, height), Interval(0, width))

    @classmethod
    def from_bounds(cls, r0: int, r1: int, c0: int, c1: int) -> "Region":
        return cls(Interval(r0, r1), Interval(c0, c1))

    @property
    def height(self) -> int:
        return len(self.rows)

    @property
    def width(self) -> int:
        return len(self.cols)

    @property
    def area(self) -> int:
        return self.height * self.width

    @property
    def empty(self) -> bool:
        return self.area == 0

    def intersect(self, other: "Region") -> "Region":
        return Region(self.rows.intersect(other.rows), self.cols.intersect(other.cols))

    def union_hull(self, other: "Region") -> "Region":
        return Region(
            self.rows.union_hull(other.rows), self.cols.union_hull(other.cols)
        )

    def contains(self, other: "Region") -> bool:
        return self.rows.contains(other.rows) and self.cols.contains(other.cols)

    def overlap_area(self, other: "Region") -> int:
        return self.rows.overlap(other.rows) * self.cols.overlap(other.cols)


@dataclass(frozen=True)
class PaddedInterval:
    """A clipped interval plus the virtual zero padding required per side.

    ``interval`` lies inside the real map bounds; ``pad_lo``/``pad_hi``
    give how many rows (or columns) of zeros must be prepended/appended
    to the extracted slice so that a padding-free convolution over the
    result produces exactly the requested output interval.
    """

    interval: Interval
    pad_lo: int
    pad_hi: int

    @property
    def padded_length(self) -> int:
        return len(self.interval) + self.pad_lo + self.pad_hi


@dataclass(frozen=True)
class PaddedRegion:
    """Two :class:`PaddedInterval` axes bundled as a rectangle."""

    rows: PaddedInterval
    cols: PaddedInterval

    @property
    def region(self) -> Region:
        return Region(self.rows.interval, self.cols.interval)

    @property
    def padded_height(self) -> int:
        return self.rows.padded_length

    @property
    def padded_width(self) -> int:
        return self.cols.padded_length


def receptive_interval(
    out: Interval, kernel: int, stride: int, padding: int, in_size: int
) -> PaddedInterval:
    """Exact receptive field of output interval ``out`` along one axis.

    Returns the input interval (clipped to ``[0, in_size)``) together
    with the amount of virtual zero padding each side of the tile needs.
    An empty output interval maps to an empty input interval.
    """
    if out.empty:
        return PaddedInterval(EMPTY_INTERVAL, 0, 0)
    # Receptive field in padded coordinates.
    lo_padded = out.start * stride
    hi_padded = (out.end - 1) * stride + kernel
    # Translate to unpadded coordinates and clip.  The window can fall
    # entirely inside the virtual padding when padding >= kernel — then
    # the clipped interval is empty and the whole tile is zeros.
    lo = lo_padded - padding
    hi = hi_padded - padding
    lo_c = min(max(lo, 0), in_size)
    hi_c = min(max(hi, 0), in_size)
    pad_lo = max(0, min(hi, 0) - lo)
    pad_hi = max(0, hi - max(lo, in_size))
    return PaddedInterval(Interval(lo_c, hi_c), pad_lo, pad_hi)


def receptive_region(
    out: Region,
    kernel: "tuple[int, int]",
    stride: "tuple[int, int]",
    padding: "tuple[int, int]",
    in_hw: "tuple[int, int]",
) -> PaddedRegion:
    """2-D counterpart of :func:`receptive_interval` (kernel/stride/padding
    are ``(vertical, horizontal)`` pairs, ``in_hw`` is ``(H, W)``)."""
    return PaddedRegion(
        receptive_interval(out.rows, kernel[0], stride[0], padding[0], in_hw[0]),
        receptive_interval(out.cols, kernel[1], stride[1], padding[1], in_hw[1]),
    )


def owned_interval(out: Interval, stride: int, in_size: int) -> Interval:
    """Stride-only projection of an output interval onto the input axis.

    This is the *owned* (non-redundant) share: projecting disjoint
    output intervals through strides alone yields disjoint input
    intervals, so anything a device reads beyond its owned projection is
    halo it shares with a neighbour.  Used for redundancy accounting
    (Table I / Fig. 13 of the paper).
    """
    if out.empty:
        return EMPTY_INTERVAL
    return Interval(out.start * stride, min(in_size, out.end * stride))
