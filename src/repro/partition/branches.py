"""Branch (path) partitioning of concat blocks — the paper's future work.

The paper observes (§V-B) that InceptionV3 speeds up less than ResNet34
because "the optimal model partition is more likely to exist within
blocks. And PICO currently does not support such a partition."  For a
*concat* block the paths are independent given the block input, so an
alternative to spatial strips is to give each device whole paths: it
reads the union input region its paths need and produces their output
channels over the full spatial map.  Channel outputs are disjoint, so —
unlike spatial tiles — branch partitioning has **zero** redundant
computation; its cost is bounded by the heaviest path (it cannot split
a single path across devices).

This module provides the path-weight accounting and the LPT (longest
processing time) assignment of paths to devices used by the
branch-parallel planner extension.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.cost.flops import CostOptions, DEFAULT_OPTIONS, layer_flops
from repro.models.graph import BlockUnit, Model
from repro.partition.fused import chain_backprop
from repro.partition.regions import Region

__all__ = [
    "is_branchable",
    "path_flops",
    "path_out_channels",
    "concat_channel_blocks",
    "path_input_region",
    "assign_paths_lpt",
]


def is_branchable(unit) -> bool:
    """Whether a unit supports branch partitioning: a concat block with
    at least two paths (add-merge outputs are not channel-disjoint)."""
    return (
        isinstance(unit, BlockUnit)
        and unit.merge == "concat"
        and len(unit.paths) >= 2
    )


def path_flops(
    model: Model,
    unit_index: int,
    options: CostOptions = DEFAULT_OPTIONS,
) -> "List[float]":
    """Full-map FLOPs of each path of a concat block unit."""
    unit = model.units[unit_index]
    if not is_branchable(unit):
        raise ValueError(f"unit {unit.name} is not a branchable concat block")
    _, h, w = model.in_shape(unit_index)
    _, oh, ow = model.out_shape(unit_index)
    out_region = Region.full(oh, ow)
    flops = []
    for path in unit.paths:
        total = 0.0
        if path:
            tiles = chain_backprop(path, (h, w), out_region)
            for tile in tiles.tiles:
                total += layer_flops(tile.layer, tile.output, options)
        flops.append(total)
    return flops


def path_out_channels(model: Model, unit_index: int) -> "List[int]":
    """Output channels each path contributes to the concat."""
    unit = model.units[unit_index]
    if not is_branchable(unit):
        raise ValueError(f"unit {unit.name} is not a branchable concat block")
    cin = model.in_shape(unit_index)[0]
    return [path[-1].out_channels if path else cin for path in unit.paths]


def concat_channel_blocks(
    model: Model, unit_index: int, path_indices: "Sequence[int]"
) -> "List[Tuple[int, int, int, int]]":
    """Copy list mapping a branch worker's tile channels into the block's
    global concat layout.

    A worker executing paths ``path_indices`` (sorted ascending) emits
    their output channels concatenated; entry ``(t_lo, t_hi, o_lo,
    o_hi)`` says tile channels ``[t_lo, t_hi)`` land at output channels
    ``[o_lo, o_hi)``.  Shared by the distributed coordinator and the
    local multi-threaded plan executor.
    """
    per_path = path_out_channels(model, unit_index)
    offsets = [0]
    for c in per_path:
        offsets.append(offsets[-1] + c)
    blocks = []
    tile_pos = 0
    for idx in sorted(path_indices):
        c = per_path[idx]
        blocks.append((tile_pos, tile_pos + c, offsets[idx], offsets[idx + 1]))
        tile_pos += c
    return blocks


def path_input_region(
    model: Model, unit_index: int, path_indices: "Sequence[int]"
) -> Region:
    """Union input region the given paths need for the full output map."""
    unit = model.units[unit_index]
    if not is_branchable(unit):
        raise ValueError(f"unit {unit.name} is not a branchable concat block")
    _, h, w = model.in_shape(unit_index)
    _, oh, ow = model.out_shape(unit_index)
    out_region = Region.full(oh, ow)
    union = None
    for idx in path_indices:
        path = unit.paths[idx]
        need = (
            chain_backprop(path, (h, w), out_region).input.region
            if path
            else out_region
        )
        union = need if union is None else union.union_hull(need)
    if union is None:
        raise ValueError("path_indices must be non-empty")
    return union


def assign_paths_lpt(
    weights: "Sequence[float]", capacities: "Sequence[float]"
) -> "Tuple[Tuple[int, ...], ...]":
    """Assign paths to devices by weighted LPT.

    Paths are visited heaviest-first; each goes to the device whose
    *normalised* load (assigned weight / capacity) is currently lowest.
    Returns per-device tuples of path indices (a device may receive
    none — it simply idles, like an empty spatial strip).
    """
    if not weights:
        raise ValueError("weights must be non-empty")
    if not capacities:
        raise ValueError("capacities must be non-empty")
    if any(c <= 0 for c in capacities):
        raise ValueError("capacities must be positive")
    groups: "List[List[int]]" = [[] for _ in capacities]
    loads = [0.0] * len(capacities)
    order = sorted(range(len(weights)), key=lambda i: -weights[i])
    for path_idx in order:
        device = min(
            range(len(capacities)),
            key=lambda d: (loads[d] + weights[path_idx]) / capacities[d],
        )
        groups[device].append(path_idx)
        loads[device] += weights[path_idx]
    return tuple(tuple(sorted(g)) for g in groups)
