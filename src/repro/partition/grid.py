"""2-D grid partitioner (DeepThings-style) — ablation extension.

DeepThings partitions feature maps into 2-D grids instead of strips to
reduce per-device memory; the trade-off is more overlap edges.  PICO and
our baselines default to strips (as in MoDNN/AOFL), but the grid
partitioner lets the benchmarks quantify the difference.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.partition.regions import Region
from repro.partition.strips import equal_partition, proportional_partition

__all__ = ["grid_shape_for", "grid_partition", "weighted_grid_partition"]


def grid_shape_for(parts: int) -> Tuple[int, int]:
    """Most-square (rows, cols) factorisation of ``parts``."""
    if parts <= 0:
        raise ValueError("parts must be positive")
    best = (1, parts)
    for rows in range(1, int(math.isqrt(parts)) + 1):
        if parts % rows == 0:
            best = (rows, parts // rows)
    return best


def grid_partition(height: int, width: int, rows: int, cols: int) -> "List[Region]":
    """Split an ``H×W`` map into an equal ``rows × cols`` grid
    (row-major order)."""
    row_ivs = equal_partition(height, rows)
    col_ivs = equal_partition(width, cols)
    return [Region(r, c) for r in row_ivs for c in col_ivs]


def weighted_grid_partition(
    height: int, width: int, row_weights: "Sequence[float]",
    col_weights: "Sequence[float]",
) -> "List[Region]":
    """Grid with proportional row/column sizing (row-major order)."""
    row_ivs = proportional_partition(height, row_weights)
    col_ivs = proportional_partition(width, col_weights)
    return [Region(r, c) for r in row_ivs for c in col_ivs]
