"""YOLOv2 (Redmon & Farhadi 2017): 23 conv + 5 pool, no FC head.

The backbone (Darknet-19 trunk, 18 convs + 5 max-pools) is exact.  The
detection tail's passthrough/reorg connection — a skip from the last
28×28 feature map concatenated into the 14×14 tail — crosses a pooling
boundary and therefore cannot be expressed in the chain-of-units
abstraction the paper plans over (the paper likewise profiles YOLOv2 as
a flat per-layer chain in Fig. 2b).  We linearise it: ``conv21`` is a
1×1 expansion to the 1280 channels the concat would produce (negligible
FLOPs at 14×14), and ``conv22``/``conv23`` match the real detection
convs exactly.  Layer count (23 conv + 5 pool) and the FLOPs profile of
every expensive layer are preserved.
"""

from __future__ import annotations

from repro.models.graph import Model, chain_model
from repro.models.layers import ConvSpec, conv1x1, conv3x3, maxpool2

__all__ = ["yolov2"]


def _dn_conv3(name: str, cin: int, cout: int) -> ConvSpec:
    return conv3x3(name, cin, cout, activation="leaky_relu", batch_norm=True, bias=False)


def _dn_conv1(name: str, cin: int, cout: int) -> ConvSpec:
    return conv1x1(name, cin, cout, activation="leaky_relu", batch_norm=True, bias=False)


def yolov2(input_hw: int = 448, num_anchors: int = 5, num_classes: int = 80) -> Model:
    """Build the YOLOv2 architecture spec (default 448×448 input, as in
    the paper's Table I)."""
    layers = [
        _dn_conv3("conv1", 3, 32),
        maxpool2("pool1", 32),
        _dn_conv3("conv2", 32, 64),
        maxpool2("pool2", 64),
        _dn_conv3("conv3", 64, 128),
        _dn_conv1("conv4", 128, 64),
        _dn_conv3("conv5", 64, 128),
        maxpool2("pool3", 128),
        _dn_conv3("conv6", 128, 256),
        _dn_conv1("conv7", 256, 128),
        _dn_conv3("conv8", 128, 256),
        maxpool2("pool4", 256),
        _dn_conv3("conv9", 256, 512),
        _dn_conv1("conv10", 512, 256),
        _dn_conv3("conv11", 256, 512),
        _dn_conv1("conv12", 512, 256),
        _dn_conv3("conv13", 256, 512),
        maxpool2("pool5", 512),
        _dn_conv3("conv14", 512, 1024),
        _dn_conv1("conv15", 1024, 512),
        _dn_conv3("conv16", 512, 1024),
        _dn_conv1("conv17", 1024, 512),
        _dn_conv3("conv18", 512, 1024),
        # Detection tail.
        _dn_conv3("conv19", 1024, 1024),
        _dn_conv3("conv20", 1024, 1024),
        # Linearised passthrough: stands in for reorg(conv13) ++ conv20.
        _dn_conv1("conv21", 1024, 1280),
        _dn_conv3("conv22", 1280, 1024),
        ConvSpec(
            "conv23", 1024, num_anchors * (5 + num_classes),
            kernel_size=1, activation="linear",
        ),
    ]
    return chain_model("yolov2", (3, input_hw, input_hw), layers)
