"""Configurable toy models for planner benchmarking.

Used by the paper's Table II (planner cost over (layers, devices)
grids) and Fig. 13 (an 8-conv + 2-pool model on 64×64 MNIST-style
input, deployed on 6 heterogeneous devices).
"""

from __future__ import annotations

from repro.models.graph import Model, chain_model
from repro.models.layers import conv3x3, maxpool2

__all__ = ["toy_chain", "fig13_model"]


def toy_chain(
    n_conv: int,
    n_pool: int = 0,
    input_hw: int = 64,
    in_channels: int = 1,
    base_channels: int = 16,
    name: str = "",
) -> Model:
    """A chain of ``n_conv`` 3×3 convs with ``n_pool`` max-pools spread
    evenly between them; channels double after each pool (capped)."""
    if n_conv < 1:
        raise ValueError("need at least one conv layer")
    if n_pool < 0:
        raise ValueError("n_pool must be non-negative")
    if n_pool and input_hw >> n_pool < 4:
        raise ValueError(f"input {input_hw} too small for {n_pool} pools")
    pool_after = {
        round((i + 1) * n_conv / (n_pool + 1)) for i in range(n_pool)
    } if n_pool else set()
    layers = []
    cin = in_channels
    cout = base_channels
    for i in range(1, n_conv + 1):
        layers.append(conv3x3(f"conv{i}", cin, cout))
        cin = cout
        if i in pool_after:
            layers.append(maxpool2(f"pool{len([l for l in layers if l.kind == 'pool']) + 1}", cout))
            cout = min(cout * 2, 256)
    model_name = name or f"toy_c{n_conv}p{n_pool}"
    return chain_model(model_name, (in_channels, input_hw, input_hw), layers)


def fig13_model() -> Model:
    """The paper's Fig. 13 toy: 8 conv + 2 pool layers, 64×64 input.

    The paper does not state the channel widths; 32 base channels keeps
    the model compute-bound enough on 50 Mbps WiFi for the utilisation
    comparison to be meaningful, while staying "tiny"."""
    return toy_chain(
        n_conv=8, n_pool=2, input_hw=64, in_channels=1, base_channels=32,
        name="fig13_toy",
    )
