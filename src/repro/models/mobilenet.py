"""MobileNetV2 (Sandler et al. 2018) — extension model.

The paper's introduction cites MobileNet-class networks as the
model-compression alternative to cooperative inference; including one
in the zoo lets the benchmarks show how PICO behaves on a network that
is *already* compute-light (communication dominates much earlier, so
the planner fuses more aggressively).  Inverted residual blocks are
:class:`BlockUnit`\\ s whose main path is expand (1×1) → depthwise 3×3 →
project (1×1, linear); blocks with stride 1 and equal channels get the
identity shortcut.
"""

from __future__ import annotations

from typing import List

from repro.models.graph import BlockUnit, LayerUnit, Model, PlanUnit
from repro.models.layers import ConvSpec, DenseSpec, PoolSpec

__all__ = ["mobilenet_v2", "inverted_residual"]

# (expansion t, output channels c, repeats n, first stride s)
_V2_CONFIG = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def _bn_conv(name, cin, cout, kernel, stride=1, padding=0, groups=1,
             activation="relu6") -> ConvSpec:
    return ConvSpec(
        name, cin, cout, kernel_size=kernel, stride=stride, padding=padding,
        groups=groups, activation=activation, batch_norm=True, bias=False,
    )


def inverted_residual(
    name: str, cin: int, cout: int, stride: int, expand: int
) -> PlanUnit:
    """One MobileNetV2 bottleneck as a plan unit."""
    hidden = cin * expand
    main: "List[ConvSpec]" = []
    if expand != 1:
        main.append(_bn_conv(f"{name}.expand", cin, hidden, 1))
    main.append(
        _bn_conv(
            f"{name}.depthwise", hidden, hidden, 3, stride=stride, padding=1,
            groups=hidden,
        )
    )
    main.append(_bn_conv(f"{name}.project", hidden, cout, 1, activation="linear"))
    if stride == 1 and cin == cout:
        return BlockUnit(name, (tuple(main), ()), merge="add")
    # No shortcut: a plain chain — wrap it in a single-path "block"
    # only when needed; otherwise keep the layers as one unit by using
    # a BlockUnit with a single path (keeps planner granularity per
    # bottleneck, like the other graph CNNs).
    return BlockUnit(name, (tuple(main),), merge="concat")


def mobilenet_v2(input_hw: int = 224, num_classes: int = 1000) -> Model:
    """Build the MobileNetV2 architecture spec."""
    units: "List[PlanUnit]" = [
        LayerUnit(_bn_conv("stem", 3, 32, 3, stride=2, padding=1)),
    ]
    cin = 32
    for stage_idx, (t, c, n, s) in enumerate(_V2_CONFIG, start=1):
        for block_idx in range(n):
            stride = s if block_idx == 0 else 1
            units.append(
                inverted_residual(
                    f"bottleneck{stage_idx}.{block_idx}", cin, c, stride, t
                )
            )
            cin = c
    units.append(LayerUnit(_bn_conv("head_conv", cin, 1280, 1)))
    probe = Model("probe", (3, input_hw, input_hw), tuple(units))
    _, fh, fw = probe.final_shape
    units.append(
        LayerUnit(PoolSpec("avgpool", 1280, kernel_size=(fh, fw), stride=1, kind_="avg"))
    )
    head = (DenseSpec("classifier", 1280, num_classes, activation="softmax"),)
    return Model("mobilenet_v2", (3, input_hw, input_hw), tuple(units), head)
