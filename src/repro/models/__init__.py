"""Model specifications: layers, unit graphs and the evaluation zoo."""

from repro.models.graph import BlockUnit, LayerUnit, Model, PlanUnit, chain_model
from repro.models.inception import inception_v3
from repro.models.mobilenet import mobilenet_v2
from repro.models.layers import ConvSpec, DenseSpec, PoolSpec, conv1x1, conv3x3, maxpool2
from repro.models.resnet import resnet34
from repro.models.toy import fig13_model, toy_chain
from repro.models.vgg import vgg16
from repro.models.yolo import yolov2
from repro.models.zoo import available_models, get_model

__all__ = [
    "BlockUnit",
    "ConvSpec",
    "DenseSpec",
    "LayerUnit",
    "Model",
    "PlanUnit",
    "PoolSpec",
    "available_models",
    "chain_model",
    "conv1x1",
    "conv3x3",
    "fig13_model",
    "get_model",
    "inception_v3",
    "maxpool2",
    "mobilenet_v2",
    "resnet34",
    "toy_chain",
    "vgg16",
    "yolov2",
]
