"""ResNet34 (He et al. 2016) as a chain of residual :class:`BlockUnit`\\ s.

Each basic block is a plan unit (paper §IV-B: blocks are "special
layers"); the identity shortcut is an empty path, downsampling blocks
use a 1×1 stride-2 projection shortcut.
"""

from __future__ import annotations

from repro.models.graph import BlockUnit, LayerUnit, Model
from repro.models.layers import ConvSpec, DenseSpec, PoolSpec

__all__ = ["resnet34", "basic_block"]

# (stage, number of blocks, output channels)
_RESNET34_STAGES = ((1, 3, 64), (2, 4, 128), (3, 6, 256), (4, 3, 512))


def basic_block(name: str, cin: int, cout: int, stride: int = 1) -> BlockUnit:
    """A ResNet *basic* residual block: two 3×3 convs + shortcut."""
    main = (
        ConvSpec(
            f"{name}.conv1", cin, cout, kernel_size=3, stride=stride, padding=1,
            batch_norm=True, bias=False,
        ),
        ConvSpec(
            f"{name}.conv2", cout, cout, kernel_size=3, stride=1, padding=1,
            activation="linear", batch_norm=True, bias=False,
        ),
    )
    if stride != 1 or cin != cout:
        shortcut = (
            ConvSpec(
                f"{name}.downsample", cin, cout, kernel_size=1, stride=stride,
                activation="linear", batch_norm=True, bias=False,
            ),
        )
    else:
        shortcut = ()
    return BlockUnit(name, (main, shortcut), merge="add", post_activation="relu")


def resnet34(input_hw: int = 224, num_classes: int = 1000) -> Model:
    """Build the ResNet34 architecture spec: 7×7 stem, 16 basic blocks,
    global average pool, FC classifier."""
    units = [
        LayerUnit(
            ConvSpec(
                "conv1", 3, 64, kernel_size=7, stride=2, padding=3,
                batch_norm=True, bias=False,
            )
        ),
        LayerUnit(PoolSpec("maxpool", 64, kernel_size=3, stride=2, padding=1)),
    ]
    cin = 64
    for stage, n_blocks, cout in _RESNET34_STAGES:
        for b in range(1, n_blocks + 1):
            stride = 2 if (stage > 1 and b == 1) else 1
            units.append(basic_block(f"layer{stage}.block{b}", cin, cout, stride))
            cin = cout
    final_hw = input_hw // 32
    units.append(
        LayerUnit(
            PoolSpec(
                "avgpool", 512, kernel_size=final_hw, stride=1, kind_="avg",
            )
        )
    )
    head = (DenseSpec("fc", 512, num_classes, activation="softmax"),)
    return Model("resnet34", (3, input_hw, input_hw), tuple(units), head)
