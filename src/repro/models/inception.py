"""InceptionV3 (Szegedy et al.) as a chain of inception :class:`BlockUnit`\\ s.

Every inception module is one plan unit with concat merge.  Two
fidelity notes:

* Branches that fan out internally (the 1×3/3×1 splits of the C
  modules) are flattened into separate paths that each repeat the
  shared prefix conv; this slightly over-counts the shared 1×1/3×3
  prefix FLOPs (< 2 % of a C module) but keeps every path a chain.
* Average pools inside branches use ``count_include_pad`` semantics so
  region-restricted execution stays bit-exact (see ``repro.nn.ops``).

The paper itself notes inception blocks contain more layers than
residual blocks, so block-granular planning loses some speedup on
InceptionV3 (Fig. 12) — an effect this construction reproduces.
"""

from __future__ import annotations

from typing import Tuple

from repro.models.graph import BlockUnit, LayerUnit, Model
from repro.models.layers import ConvSpec, DenseSpec, PoolSpec, SpatialLayer

__all__ = ["inception_v3"]


def _bn_conv(
    name: str, cin: int, cout: int, kernel, stride=1, padding=0
) -> ConvSpec:
    return ConvSpec(
        name, cin, cout, kernel_size=kernel, stride=stride, padding=padding,
        batch_norm=True, bias=False,
    )


def _avgpool3(name: str, channels: int) -> PoolSpec:
    return PoolSpec(name, channels, kernel_size=3, stride=1, padding=1, kind_="avg")


def _inception_a(name: str, cin: int, pool_proj: int) -> BlockUnit:
    """35×35 module: 1×1 / 5×5 / double-3×3 / pool branches."""
    paths: Tuple[Tuple[SpatialLayer, ...], ...] = (
        (_bn_conv(f"{name}.b1.conv", cin, 64, 1),),
        (
            _bn_conv(f"{name}.b5.reduce", cin, 48, 1),
            _bn_conv(f"{name}.b5.conv", 48, 64, 5, padding=2),
        ),
        (
            _bn_conv(f"{name}.b3.reduce", cin, 64, 1),
            _bn_conv(f"{name}.b3.conv1", 64, 96, 3, padding=1),
            _bn_conv(f"{name}.b3.conv2", 96, 96, 3, padding=1),
        ),
        (
            _avgpool3(f"{name}.pool", cin),
            _bn_conv(f"{name}.pool.proj", cin, pool_proj, 1),
        ),
    )
    return BlockUnit(name, paths, merge="concat")


def _reduction_a(name: str, cin: int) -> BlockUnit:
    """Grid reduction 35→17."""
    paths = (
        (_bn_conv(f"{name}.b3.conv", cin, 384, 3, stride=2),),
        (
            _bn_conv(f"{name}.b3dbl.reduce", cin, 64, 1),
            _bn_conv(f"{name}.b3dbl.conv1", 64, 96, 3, padding=1),
            _bn_conv(f"{name}.b3dbl.conv2", 96, 96, 3, stride=2),
        ),
        (PoolSpec(f"{name}.pool", cin, kernel_size=3, stride=2),),
    )
    return BlockUnit(name, paths, merge="concat")


def _inception_b(name: str, cin: int, c7: int) -> BlockUnit:
    """17×17 module with factorised 1×7 / 7×1 convolutions."""
    paths = (
        (_bn_conv(f"{name}.b1.conv", cin, 192, 1),),
        (
            _bn_conv(f"{name}.b7.reduce", cin, c7, 1),
            _bn_conv(f"{name}.b7.conv1", c7, c7, (1, 7), padding=(0, 3)),
            _bn_conv(f"{name}.b7.conv2", c7, 192, (7, 1), padding=(3, 0)),
        ),
        (
            _bn_conv(f"{name}.b7dbl.reduce", cin, c7, 1),
            _bn_conv(f"{name}.b7dbl.conv1", c7, c7, (7, 1), padding=(3, 0)),
            _bn_conv(f"{name}.b7dbl.conv2", c7, c7, (1, 7), padding=(0, 3)),
            _bn_conv(f"{name}.b7dbl.conv3", c7, c7, (7, 1), padding=(3, 0)),
            _bn_conv(f"{name}.b7dbl.conv4", c7, 192, (1, 7), padding=(0, 3)),
        ),
        (
            _avgpool3(f"{name}.pool", cin),
            _bn_conv(f"{name}.pool.proj", cin, 192, 1),
        ),
    )
    return BlockUnit(name, paths, merge="concat")


def _reduction_b(name: str, cin: int) -> BlockUnit:
    """Grid reduction 17→8."""
    paths = (
        (
            _bn_conv(f"{name}.b3.reduce", cin, 192, 1),
            _bn_conv(f"{name}.b3.conv", 192, 320, 3, stride=2),
        ),
        (
            _bn_conv(f"{name}.b7.reduce", cin, 192, 1),
            _bn_conv(f"{name}.b7.conv1", 192, 192, (1, 7), padding=(0, 3)),
            _bn_conv(f"{name}.b7.conv2", 192, 192, (7, 1), padding=(3, 0)),
            _bn_conv(f"{name}.b7.conv3", 192, 192, 3, stride=2),
        ),
        (PoolSpec(f"{name}.pool", cin, kernel_size=3, stride=2),),
    )
    return BlockUnit(name, paths, merge="concat")


def _inception_c(name: str, cin: int) -> BlockUnit:
    """8×8 module; internal 1×3 / 3×1 fan-outs flattened into paths."""
    paths = (
        (_bn_conv(f"{name}.b1.conv", cin, 320, 1),),
        (
            _bn_conv(f"{name}.b3.reduce", cin, 384, 1),
            _bn_conv(f"{name}.b3.conv_h", 384, 384, (1, 3), padding=(0, 1)),
        ),
        (
            _bn_conv(f"{name}.b3.reduce2", cin, 384, 1),
            _bn_conv(f"{name}.b3.conv_v", 384, 384, (3, 1), padding=(1, 0)),
        ),
        (
            _bn_conv(f"{name}.b3dbl.reduce", cin, 448, 1),
            _bn_conv(f"{name}.b3dbl.conv", 448, 384, 3, padding=1),
            _bn_conv(f"{name}.b3dbl.conv_h", 384, 384, (1, 3), padding=(0, 1)),
        ),
        (
            _bn_conv(f"{name}.b3dbl.reduce2", cin, 448, 1),
            _bn_conv(f"{name}.b3dbl.conv2", 448, 384, 3, padding=1),
            _bn_conv(f"{name}.b3dbl.conv_v", 384, 384, (3, 1), padding=(1, 0)),
        ),
        (
            _avgpool3(f"{name}.pool", cin),
            _bn_conv(f"{name}.pool.proj", cin, 192, 1),
        ),
    )
    return BlockUnit(name, paths, merge="concat")


def inception_v3(input_hw: int = 299, num_classes: int = 1000) -> Model:
    """Build the InceptionV3 architecture spec (299×299 input)."""
    units = [
        LayerUnit(_bn_conv("stem.conv1", 3, 32, 3, stride=2)),
        LayerUnit(_bn_conv("stem.conv2", 32, 32, 3)),
        LayerUnit(_bn_conv("stem.conv3", 32, 64, 3, padding=1)),
        LayerUnit(PoolSpec("stem.pool1", 64, kernel_size=3, stride=2)),
        LayerUnit(_bn_conv("stem.conv4", 64, 80, 1)),
        LayerUnit(_bn_conv("stem.conv5", 80, 192, 3)),
        LayerUnit(PoolSpec("stem.pool2", 192, kernel_size=3, stride=2)),
        _inception_a("mixed5b", 192, pool_proj=32),   # -> 256
        _inception_a("mixed5c", 256, pool_proj=64),   # -> 288
        _inception_a("mixed5d", 288, pool_proj=64),   # -> 288
        _reduction_a("mixed6a", 288),                 # -> 768 @ 17
        _inception_b("mixed6b", 768, c7=128),
        _inception_b("mixed6c", 768, c7=160),
        _inception_b("mixed6d", 768, c7=160),
        _inception_b("mixed6e", 768, c7=192),
        _reduction_b("mixed7a", 768),                 # -> 1280 @ 8
        _inception_c("mixed7b", 1280),                # -> 2048
        _inception_c("mixed7c", 2048),                # -> 2048
    ]
    # Final spatial size depends on input resolution; use global avg pool.
    probe = Model("probe", (3, input_hw, input_hw), tuple(units))
    _, fh, fw = probe.final_shape
    units.append(
        LayerUnit(PoolSpec("avgpool", 2048, kernel_size=(fh, fw), stride=1, kind_="avg"))
    )
    head = (DenseSpec("fc", 2048, num_classes, activation="softmax"),)
    return Model("inception_v3", (3, input_hw, input_hw), tuple(units), head)
