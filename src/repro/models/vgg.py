"""VGG16 (Simonyan & Zisserman 2014): 13 conv + 5 pool + 3 FC.

The configuration matches the paper's Table I row ("Layers: 13 conv +
5 pool", input 224×224 — the paper prints "244 × 244", an evident typo
for the standard ImageNet crop).
"""

from __future__ import annotations

from repro.models.graph import Model, chain_model
from repro.models.layers import DenseSpec, conv3x3, maxpool2

__all__ = ["vgg16"]

# (block index, number of convs, output channels)
_VGG16_BLOCKS = ((1, 2, 64), (2, 2, 128), (3, 3, 256), (4, 3, 512), (5, 3, 512))


def vgg16(input_hw: int = 224, num_classes: int = 1000) -> Model:
    """Build the VGG16 architecture spec.

    ``input_hw`` scales the input resolution (224 default); the head is
    only attached for the default resolution-independent flatten size.
    """
    layers = []
    cin = 3
    for block, n_convs, cout in _VGG16_BLOCKS:
        for i in range(1, n_convs + 1):
            layers.append(conv3x3(f"conv{block}_{i}", cin, cout))
            cin = cout
        layers.append(maxpool2(f"pool{block}", cout))
    final_hw = input_hw // 32
    head = (
        DenseSpec("fc6", 512 * final_hw * final_hw, 4096),
        DenseSpec("fc7", 4096, 4096),
        DenseSpec("fc8", 4096, num_classes, activation="softmax"),
    )
    return chain_model("vgg16", (3, input_hw, input_hw), layers, head)
