"""Model graphs: chains of *plan units*.

The paper plans over a chain of units.  For plain CNNs (VGG16, YOLOv2)
each unit is a single conv/pool layer.  For graph CNNs (ResNet34,
InceptionV3) each multi-path block is treated as one *special layer*
(paper §IV-B): the planner never cuts inside a block, and the block's
input partition is the union of the partitions required by its paths.

A :class:`Model` is therefore always a linear chain of units, possibly
followed by a dense *head* (flatten + fully-connected layers) that runs
unsplit on the final stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple, Union

from repro.models.layers import ConvSpec, DenseSpec, PoolSpec, SpatialLayer

__all__ = ["LayerUnit", "BlockUnit", "PlanUnit", "Model", "LayerInfo", "chain_model"]

_Shape3 = Tuple[int, int, int]  # (C, H, W)
_Size2 = Tuple[int, int]

Chain = Tuple[SpatialLayer, ...]


def _chain_out(chain: Chain, in_channels: int, in_hw: _Size2) -> "Tuple[int, _Size2]":
    """Propagate (channels, spatial) through a chain of spatial layers."""
    channels, hw = in_channels, in_hw
    for layer in chain:
        if layer.in_channels != channels:
            raise ValueError(
                f"layer {layer.name}: expects {layer.in_channels} channels, "
                f"got {channels}"
            )
        hw = layer.out_spatial(hw)
        channels = layer.out_channels
    return channels, hw


def _chain_stride(chain: Chain) -> _Size2:
    sv = sh = 1
    for layer in chain:
        sv *= layer.stride[0]
        sh *= layer.stride[1]
    return (sv, sh)


@dataclass(frozen=True)
class LayerUnit:
    """A plan unit wrapping a single conv or pool layer."""

    layer: SpatialLayer

    @property
    def name(self) -> str:
        return self.layer.name

    @property
    def kind(self) -> str:
        return self.layer.kind

    @property
    def in_channels(self) -> int:
        return self.layer.in_channels

    def out_channels(self, in_channels: int) -> int:
        return self.layer.out_channels

    def out_spatial(self, in_hw: _Size2) -> _Size2:
        return self.layer.out_spatial(in_hw)

    def paths(self) -> "Tuple[Chain, ...]":
        return ((self.layer,),)

    @property
    def merge(self) -> Optional[str]:
        return None

    def total_stride(self, in_channels: int, in_hw: _Size2) -> _Size2:
        return self.layer.stride


@dataclass(frozen=True)
class BlockUnit:
    """A multi-path block (residual / inception) treated as one unit.

    ``paths`` is a tuple of layer chains; an *empty* chain denotes the
    identity shortcut.  All paths must produce the same spatial size and
    the same cumulative stride.  ``merge`` is ``"add"`` (residual; all
    paths must agree on channels) or ``"concat"`` (inception; output
    channels are the sum over paths).
    """

    name: str
    paths: "Tuple[Chain, ...]"
    merge: str  # "add" | "concat"
    post_activation: str = "linear"  # applied after the merge (ResNet: relu)

    def __post_init__(self) -> None:
        object.__setattr__(self, "paths", tuple(tuple(p) for p in self.paths))
        if not self.paths:
            raise ValueError(f"block {self.name}: needs at least one path")
        if self.merge not in ("add", "concat"):
            raise ValueError(f"block {self.name}: unknown merge {self.merge!r}")
        if self.post_activation not in ("relu", "leaky_relu", "linear"):
            raise ValueError(
                f"block {self.name}: unknown post_activation {self.post_activation!r}"
            )
        if all(len(p) == 0 for p in self.paths):
            raise ValueError(f"block {self.name}: all paths are identity")

    @property
    def kind(self) -> str:
        return "block"

    @property
    def in_channels(self) -> int:
        for path in self.paths:
            if path:
                return path[0].in_channels
        raise AssertionError("unreachable: validated in __post_init__")

    def out_channels(self, in_channels: int) -> int:
        per_path = []
        for path in self.paths:
            per_path.append(path[-1].out_channels if path else in_channels)
        if self.merge == "add":
            if len(set(per_path)) != 1:
                raise ValueError(
                    f"block {self.name}: add-merge paths disagree on channels "
                    f"{per_path}"
                )
            return per_path[0]
        return sum(per_path)

    def out_spatial(self, in_hw: _Size2) -> _Size2:
        sizes = set()
        for path in self.paths:
            _, hw = _chain_out(path, self.in_channels if path else 0, in_hw) if path else (0, in_hw)
            sizes.add(hw)
        if len(sizes) != 1:
            raise ValueError(f"block {self.name}: paths disagree on spatial size {sizes}")
        return sizes.pop()

    def total_stride(self, in_channels: int, in_hw: _Size2) -> _Size2:
        strides = {(_chain_stride(p) if p else (1, 1)) for p in self.paths}
        if len(strides) != 1:
            raise ValueError(
                f"block {self.name}: paths disagree on cumulative stride {strides}"
            )
        return strides.pop()


PlanUnit = Union[LayerUnit, BlockUnit]


@dataclass(frozen=True)
class LayerInfo:
    """A flattened view of one concrete layer inside a model.

    ``unit_index`` locates the owning plan unit; ``path_index`` is None
    for chain layers and the path position for block internals.
    """

    layer: SpatialLayer
    unit_index: int
    path_index: Optional[int]
    in_shape: _Shape3
    out_shape: _Shape3


@dataclass(frozen=True)
class Model:
    """An immutable CNN description: input shape, unit chain, dense head."""

    name: str
    input_shape: _Shape3
    units: "Tuple[PlanUnit, ...]"
    head: "Tuple[DenseSpec, ...]" = ()
    # Per-unit boundary shapes, derived in __post_init__:
    #   shapes[i] is the input shape of unit i; shapes[n_units] is the
    #   final feature-map shape.
    shapes: "Tuple[_Shape3, ...]" = field(default=(), compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "units", tuple(self.units))
        object.__setattr__(self, "head", tuple(self.head))
        if not self.units:
            raise ValueError(f"model {self.name}: needs at least one unit")
        shapes = [self.input_shape]
        channels, hw = self.input_shape[0], self.input_shape[1:]
        for unit in self.units:
            if unit.in_channels != channels:
                raise ValueError(
                    f"model {self.name}: unit {unit.name} expects "
                    f"{unit.in_channels} channels, got {channels}"
                )
            hw = unit.out_spatial(hw)
            channels = unit.out_channels(shapes[-1][0])
            shapes.append((channels, hw[0], hw[1]))
        object.__setattr__(self, "shapes", tuple(shapes))
        if self.head:
            c, h, w = shapes[-1]
            if self.head[0].in_features != c * h * w:
                raise ValueError(
                    f"model {self.name}: head expects {self.head[0].in_features} "
                    f"features, final map has {c * h * w}"
                )
            feats = self.head[0].out_features
            for dense in self.head[1:]:
                if dense.in_features != feats:
                    raise ValueError(
                        f"model {self.name}: dense {dense.name} expects "
                        f"{dense.in_features} features, got {feats}"
                    )
                feats = dense.out_features

    @property
    def n_units(self) -> int:
        return len(self.units)

    def __len__(self) -> int:
        return len(self.units)

    def in_shape(self, unit_index: int) -> _Shape3:
        """Input feature-map shape of unit ``unit_index``."""
        return self.shapes[unit_index]

    def out_shape(self, unit_index: int) -> _Shape3:
        """Output feature-map shape of unit ``unit_index``."""
        return self.shapes[unit_index + 1]

    @property
    def final_shape(self) -> _Shape3:
        return self.shapes[-1]

    def iter_layers(self) -> Iterator[LayerInfo]:
        """Yield every concrete layer (block internals included) with shapes."""
        for idx, unit in enumerate(self.units):
            cin, h, w = self.in_shape(idx)
            if isinstance(unit, LayerUnit):
                oh, ow = unit.layer.out_spatial((h, w))
                yield LayerInfo(
                    unit.layer, idx, None, (cin, h, w),
                    (unit.layer.out_channels, oh, ow),
                )
            else:
                for p_idx, path in enumerate(unit.paths):
                    channels, hw = cin, (h, w)
                    for layer in path:
                        ohw = layer.out_spatial(hw)
                        yield LayerInfo(
                            layer, idx, p_idx, (channels, hw[0], hw[1]),
                            (layer.out_channels, ohw[0], ohw[1]),
                        )
                        channels, hw = layer.out_channels, ohw

    def conv_layer_count(self) -> int:
        return sum(1 for info in self.iter_layers() if info.layer.kind == "conv")

    def pool_layer_count(self) -> int:
        return sum(1 for info in self.iter_layers() if info.layer.kind == "pool")

    def describe(self) -> str:
        """Human-readable architecture summary."""
        lines = [f"{self.name}  input={self.input_shape}"]
        for idx, unit in enumerate(self.units):
            lines.append(
                f"  [{idx:2d}] {unit.name:<24s} {unit.kind:<5s} "
                f"{self.in_shape(idx)} -> {self.out_shape(idx)}"
            )
        for dense in self.head:
            lines.append(
                f"       {dense.name:<24s} dense {dense.in_features} -> "
                f"{dense.out_features}"
            )
        return "\n".join(lines)


def chain_model(
    name: str,
    input_shape: _Shape3,
    layers: "Sequence[SpatialLayer]",
    head: "Sequence[DenseSpec]" = (),
) -> Model:
    """Build a plain chain model where every layer is its own plan unit."""
    return Model(name, input_shape, tuple(LayerUnit(l) for l in layers), tuple(head))
