"""Model registry: the four evaluation CNNs plus toy chains by name."""

from __future__ import annotations

from typing import Callable, Dict

from repro.models.graph import Model
from repro.models.inception import inception_v3
from repro.models.mobilenet import mobilenet_v2
from repro.models.resnet import resnet34
from repro.models.toy import fig13_model, toy_chain
from repro.models.vgg import vgg16
from repro.models.yolo import yolov2

__all__ = ["MODEL_BUILDERS", "get_model", "available_models"]

MODEL_BUILDERS: "Dict[str, Callable[[], Model]]" = {
    "vgg16": vgg16,
    "yolov2": yolov2,
    "resnet34": resnet34,
    "inception_v3": inception_v3,
    "mobilenet_v2": mobilenet_v2,
    "fig13_toy": fig13_model,
}


def get_model(name: str, **kwargs) -> Model:
    """Build a registered model by name (kwargs forwarded to the builder)."""
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_BUILDERS)}"
        ) from None
    return builder(**kwargs)


def available_models() -> "list[str]":
    return sorted(MODEL_BUILDERS)
