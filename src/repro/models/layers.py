"""Layer specifications.

Layers are immutable *specs* — architecture only, no weights.  Planning,
cost modelling and partitioning operate purely on these specs; the numpy
execution engine (:mod:`repro.nn`) attaches weights separately.  This
mirrors the paper's setting, where the partition strategy depends only
on kernel sizes, strides, channels and feature-map shapes (Eq. 2–4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple, Union

from repro._util import out_size

__all__ = [
    "ConvSpec",
    "PoolSpec",
    "DenseSpec",
    "SpatialLayer",
    "conv3x3",
    "conv1x1",
    "maxpool2",
]

_Size2 = Tuple[int, int]


def _pair(value: "Union[int, _Size2]") -> _Size2:
    """Normalise an int or 2-tuple into a ``(vertical, horizontal)`` pair."""
    if isinstance(value, int):
        return (value, value)
    v, h = value
    return (int(v), int(h))


@dataclass(frozen=True)
class ConvSpec:
    """A 2-D convolution layer (optionally followed by BN and activation).

    ``kernel_size``, ``stride`` and ``padding`` accept an int or an
    ``(h, w)`` pair — non-square kernels (e.g. InceptionV3's 1×7 / 7×1)
    are supported, which is exactly why the paper switched its backend
    from Darknet to LibTorch.
    """

    name: str
    in_channels: int
    out_channels: int
    kernel_size: _Size2
    stride: _Size2 = (1, 1)
    padding: _Size2 = (0, 0)
    activation: str = "relu"  # "relu" | "leaky_relu" | "relu6" | "linear"
    batch_norm: bool = False
    bias: bool = True
    groups: int = 1  # groups == in_channels -> depthwise (MobileNet)

    def __post_init__(self) -> None:
        object.__setattr__(self, "kernel_size", _pair(self.kernel_size))
        object.__setattr__(self, "stride", _pair(self.stride))
        object.__setattr__(self, "padding", _pair(self.padding))
        if self.in_channels <= 0 or self.out_channels <= 0:
            raise ValueError(f"{self.name}: channels must be positive")
        if min(self.kernel_size) <= 0 or min(self.stride) <= 0:
            raise ValueError(f"{self.name}: kernel and stride must be positive")
        if min(self.padding) < 0:
            raise ValueError(f"{self.name}: padding must be non-negative")
        if self.activation not in ("relu", "leaky_relu", "relu6", "linear"):
            raise ValueError(f"{self.name}: unknown activation {self.activation!r}")
        if self.groups < 1:
            raise ValueError(f"{self.name}: groups must be positive")
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise ValueError(
                f"{self.name}: groups={self.groups} must divide both channel counts"
            )

    @property
    def kind(self) -> str:
        return "conv"

    def out_spatial(self, in_hw: _Size2) -> _Size2:
        return (
            out_size(in_hw[0], self.kernel_size[0], self.stride[0], self.padding[0]),
            out_size(in_hw[1], self.kernel_size[1], self.stride[1], self.padding[1]),
        )

    @property
    def weight_count(self) -> int:
        """Number of learned parameters (conv weights + bias + BN affine)."""
        kh, kw = self.kernel_size
        count = self.out_channels * (self.in_channels // self.groups) * kh * kw
        if self.bias:
            count += self.out_channels
        if self.batch_norm:
            count += 2 * self.out_channels
        return count


@dataclass(frozen=True)
class PoolSpec:
    """A pooling layer (max or average); channel count is preserved."""

    name: str
    channels: int
    kernel_size: _Size2 = (2, 2)
    stride: _Size2 = (2, 2)
    padding: _Size2 = (0, 0)
    kind_: str = field(default="max")  # "max" | "avg"

    def __post_init__(self) -> None:
        object.__setattr__(self, "kernel_size", _pair(self.kernel_size))
        object.__setattr__(self, "stride", _pair(self.stride))
        object.__setattr__(self, "padding", _pair(self.padding))
        if self.channels <= 0:
            raise ValueError(f"{self.name}: channels must be positive")
        if self.kind_ not in ("max", "avg"):
            raise ValueError(f"{self.name}: unknown pool kind {self.kind_!r}")

    @property
    def kind(self) -> str:
        return "pool"

    @property
    def in_channels(self) -> int:
        return self.channels

    @property
    def out_channels(self) -> int:
        return self.channels

    def out_spatial(self, in_hw: _Size2) -> _Size2:
        return (
            out_size(in_hw[0], self.kernel_size[0], self.stride[0], self.padding[0]),
            out_size(in_hw[1], self.kernel_size[1], self.stride[1], self.padding[1]),
        )


@dataclass(frozen=True)
class DenseSpec:
    """A fully-connected layer; only appears in a model's *head*.

    Heads run unsplit on the stage device that stitches the final
    feature map — the paper observes FC layers contribute < 1 % of the
    compute of VGG16 / YOLOv2.
    """

    name: str
    in_features: int
    out_features: int
    activation: str = "relu"

    def __post_init__(self) -> None:
        if self.in_features <= 0 or self.out_features <= 0:
            raise ValueError(f"{self.name}: feature counts must be positive")
        if self.activation not in ("relu", "linear", "softmax"):
            raise ValueError(f"{self.name}: unknown activation {self.activation!r}")

    @property
    def kind(self) -> str:
        return "dense"

    @property
    def weight_count(self) -> int:
        return self.in_features * self.out_features + self.out_features


SpatialLayer = Union[ConvSpec, PoolSpec]


def conv3x3(name: str, cin: int, cout: int, **kwargs) -> ConvSpec:
    """Shorthand for the ubiquitous 3×3 / stride 1 / pad 1 convolution."""
    return ConvSpec(name, cin, cout, kernel_size=3, stride=1, padding=1, **kwargs)


def conv1x1(name: str, cin: int, cout: int, **kwargs) -> ConvSpec:
    """Shorthand for a pointwise 1×1 convolution."""
    return ConvSpec(name, cin, cout, kernel_size=1, stride=1, padding=0, **kwargs)


def maxpool2(name: str, channels: int) -> PoolSpec:
    """Shorthand for the standard 2×2 / stride 2 max-pool."""
    return PoolSpec(name, channels, kernel_size=2, stride=2, kind_="max")
