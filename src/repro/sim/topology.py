"""Network topologies: named links, builders and shortest-path routing.

The paper (and the pre-2.0 simulator) models one shared-bandwidth WLAN.
Real edge deployments are multi-hop: devices hang off heterogeneous
access links, traffic crosses switches, and link-level bandwidth
asymmetry — not just device heterogeneity — dominates placement quality
(Parthasarathy & Krishnamachari, arXiv:2210.12219).  A
:class:`Topology` is a set of named point-to-point
:class:`NetworkLink` objects with per-link bandwidth, propagation
latency, jitter and loss; the event engine gives each link its own
FIFO, so concurrent transfers contend exactly where their routes
overlap and nowhere else.

The degenerate case is :meth:`Topology.bus`: every pair of nodes
shares one link backed by a plain :class:`~repro.cost.comm.NetworkModel`
— that is the pre-2.0 simulator, bit for bit (uncontended folds
communication into stage service; ``contended=True`` is the old
``shared_medium=True`` single-token WLAN).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cost.comm import NetworkModel, wifi_50mbps

__all__ = ["NetworkLink", "Topology"]

#: Reference payload for routing weights: one VGG-ish feature tile.
_ROUTE_REF_BYTES = 1_000_000.0


@dataclass(frozen=True)
class NetworkLink:
    """A point-to-point link between two named nodes.

    ``transfer_time`` without an ``rng`` is the *expected* time —
    latency plus half the jitter window plus the serialisation time,
    inflated by the retransmission factor ``1 / (1 - loss)`` — so
    default runs stay deterministic.  Pass a generator to sample
    jitter uniformly and loss geometrically instead.
    """

    name: str
    a: str
    b: str
    bandwidth_bytes_per_s: float
    latency_s: float = 0.0
    jitter_s: float = 0.0
    loss: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")
        if self.jitter_s < 0:
            raise ValueError("jitter must be non-negative")
        if not 0 <= self.loss < 1:
            raise ValueError("loss must be in [0, 1)")

    @classmethod
    def from_mbps(
        cls,
        name: str,
        a: str,
        b: str,
        mbps: float,
        latency_s: float = 0.0,
        jitter_s: float = 0.0,
        loss: float = 0.0,
    ) -> "NetworkLink":
        return cls(name, a, b, mbps * 1e6 / 8.0, latency_s, jitter_s, loss)

    @property
    def mbps(self) -> float:
        return self.bandwidth_bytes_per_s * 8.0 / 1e6

    def other(self, node: str) -> str:
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise ValueError(f"{node!r} is not an endpoint of link {self.name!r}")

    def transfer_time(self, nbytes: float, rng=None) -> float:
        """Seconds to push ``nbytes`` across this link (one hop)."""
        wire = max(0.0, float(nbytes)) / self.bandwidth_bytes_per_s
        if rng is None:
            once = self.latency_s + self.jitter_s / 2.0 + wire
            return once / (1.0 - self.loss)
        attempts = 1
        while self.loss > 0 and rng.random() < self.loss:
            attempts += 1
        jitter = rng.uniform(0.0, self.jitter_s) if self.jitter_s > 0 else 0.0
        return attempts * (self.latency_s + wire) + jitter


class Topology:
    """A routed network of :class:`NetworkLink` objects.

    Routing is shortest-path (Dijkstra) under the weight ``latency +
    ref_bytes / bandwidth``, cached per (src, dst) pair and
    deterministic (ties break on node name).  ``entry`` names the node
    where stage-0 inputs originate (a camera/gateway); ``None`` means
    inputs appear on the first stage's own devices.
    """

    def __init__(
        self,
        links: "Iterable[NetworkLink]" = (),
        entry: Optional[str] = None,
        name: str = "topology",
    ) -> None:
        self.name = name
        self.entry = entry
        self._links: "List[NetworkLink]" = []
        self._adjacency: "Dict[str, List[NetworkLink]]" = {}
        self._route_cache: "Dict[Tuple[str, str], Tuple[NetworkLink, ...]]" = {}
        #: Degenerate shared-medium flags (see :meth:`bus`).
        self.is_bus = False
        self.contended = False
        self._bus_network: Optional[NetworkModel] = None
        for link in links:
            self.add_link(link)
        if entry is not None and self._links and entry not in self._adjacency:
            raise ValueError(f"entry node {entry!r} is not on the topology")

    # -- construction -------------------------------------------------

    def add_link(self, link: NetworkLink) -> None:
        if any(l.name == link.name for l in self._links):
            raise ValueError(f"duplicate link name {link.name!r}")
        self._links.append(link)
        self._adjacency.setdefault(link.a, []).append(link)
        self._adjacency.setdefault(link.b, []).append(link)
        self._route_cache.clear()

    def attach(
        self,
        device: str,
        to: str,
        mbps: float = 50.0,
        latency_s: float = 0.0,
        jitter_s: float = 0.0,
        loss: float = 0.0,
    ) -> NetworkLink:
        """Join ``device`` to the network at node ``to`` (mobility)."""
        if to not in self._adjacency and self._links:
            raise ValueError(f"attachment point {to!r} is not on the topology")
        link = NetworkLink.from_mbps(
            f"{device}<->{to}", device, to, mbps, latency_s, jitter_s, loss
        )
        self.add_link(link)
        return link

    def detach(self, device: str) -> "Tuple[NetworkLink, ...]":
        """Remove ``device`` and every link touching it (mobility)."""
        dropped = tuple(self._adjacency.get(device, ()))
        if not dropped:
            return ()
        self._links = [l for l in self._links if l not in dropped]
        self._adjacency = {}
        for link in self._links:
            self._adjacency.setdefault(link.a, []).append(link)
            self._adjacency.setdefault(link.b, []).append(link)
        self._route_cache.clear()
        return dropped

    # -- queries ------------------------------------------------------

    @property
    def links(self) -> "Tuple[NetworkLink, ...]":
        return tuple(self._links)

    @property
    def nodes(self) -> "Tuple[str, ...]":
        return tuple(sorted(self._adjacency))

    def __contains__(self, node: str) -> bool:
        return self.is_bus or node in self._adjacency

    def route(self, src: str, dst: str) -> "Tuple[NetworkLink, ...]":
        """The link sequence from ``src`` to ``dst`` (empty if equal)."""
        if src == dst:
            return ()
        if self.is_bus:
            return (self._links[0],)
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        for node in key:
            if node not in self._adjacency:
                raise ValueError(
                    f"node {node!r} is not on topology {self.name!r} "
                    f"(nodes: {', '.join(self.nodes)})"
                )
        dist: "Dict[str, float]" = {src: 0.0}
        prev: "Dict[str, Tuple[str, NetworkLink]]" = {}
        heap: "List[Tuple[float, str]]" = [(0.0, src)]
        seen = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in seen:
                continue
            seen.add(node)
            if node == dst:
                break
            for link in sorted(self._adjacency[node], key=lambda l: l.name):
                peer = link.other(node)
                weight = (
                    link.latency_s
                    + _ROUTE_REF_BYTES / link.bandwidth_bytes_per_s
                )
                nd = d + weight
                if nd < dist.get(peer, math.inf):
                    dist[peer] = nd
                    prev[peer] = (node, link)
                    heapq.heappush(heap, (nd, peer))
        if dst not in prev:
            raise ValueError(
                f"no route from {src!r} to {dst!r} on topology {self.name!r}"
            )
        hops: "List[NetworkLink]" = []
        node = dst
        while node != src:
            node, link = prev[node]
            hops.append(link)
        hops.reverse()
        route = tuple(hops)
        self._route_cache[key] = route
        return route

    def path_time(self, src: str, dst: str, nbytes: float) -> float:
        """Expected store-and-forward time for ``nbytes`` src → dst."""
        return sum(l.transfer_time(nbytes) for l in self.route(src, dst))

    def as_network_model(self) -> NetworkModel:
        """Collapse to a flat :class:`NetworkModel` for the planners.

        The planner's cost model (Eq. 7–8) only understands a single
        shared medium, so it sees the *bottleneck* bandwidth and the
        mean per-link latency — a coarse but monotone summary; the
        event engine then charges the real per-link, per-route times.
        """
        if self._bus_network is not None:
            return self._bus_network
        if not self._links:
            return wifi_50mbps()
        bandwidth = min(l.bandwidth_bytes_per_s for l in self._links)
        latency = sum(l.latency_s for l in self._links) / len(self._links)
        return NetworkModel(bandwidth, latency)

    def __repr__(self) -> str:
        kind = "bus" if self.is_bus else f"{len(self._links)} links"
        return f"Topology({self.name!r}, {kind}, {len(self.nodes)} nodes)"

    # -- builders -----------------------------------------------------

    @classmethod
    def bus(
        cls,
        network: Optional[NetworkModel] = None,
        contended: bool = False,
        name: str = "wlan",
    ) -> "Topology":
        """The degenerate one-link topology: the pre-2.0 simulator.

        Every node implicitly sits on the single shared link.
        ``contended=False`` folds communication into stage service
        (the old default); ``contended=True`` serialises all stages'
        transfers over the one link (the old ``shared_medium=True``).
        Both are bit-compatible with the legacy event loop.
        """
        network = network or wifi_50mbps()
        topo = cls(name=name)
        topo.add_link(
            NetworkLink(
                name,
                "*",
                "*",
                network.bandwidth_bytes_per_s,
                network.per_message_latency_s,
            )
        )
        topo.is_bus = True
        topo.contended = contended
        topo._bus_network = network
        return topo

    @classmethod
    def star(
        cls,
        devices: "Sequence[str]",
        hub: str = "hub",
        mbps: float = 50.0,
        latency_s: float = 0.0,
        jitter_s: float = 0.0,
        loss: float = 0.0,
        entry: Optional[str] = None,
    ) -> "Topology":
        """One access point: every device gets a private uplink to
        ``hub``; device↔device traffic crosses two hops and contends
        only on the two uplinks involved (unlike the bus, where it
        contends with everyone)."""
        if not devices:
            raise ValueError("star topology needs at least one device")
        topo = cls(name="star", entry=None)
        for device in devices:
            topo.add_link(
                NetworkLink.from_mbps(
                    f"{device}<->{hub}", device, hub, mbps,
                    latency_s, jitter_s, loss,
                )
            )
        topo.entry = entry if entry is not None else hub
        return topo

    @classmethod
    def mesh(
        cls,
        devices: "Sequence[str]",
        mbps: float = 50.0,
        latency_s: float = 0.0,
        jitter_s: float = 0.0,
        loss: float = 0.0,
        entry: Optional[str] = None,
    ) -> "Topology":
        """Full mesh: a direct link between every device pair."""
        if len(devices) < 2:
            raise ValueError("mesh topology needs at least two devices")
        topo = cls(name="mesh", entry=entry)
        for i, a in enumerate(devices):
            for b in devices[i + 1:]:
                topo.add_link(
                    NetworkLink.from_mbps(
                        f"{a}<->{b}", a, b, mbps, latency_s, jitter_s, loss
                    )
                )
        return topo

    @classmethod
    def fat_tree(
        cls,
        devices: "Sequence[str]",
        k: Optional[int] = None,
        mbps: float = 50.0,
        fabric_mbps: Optional[float] = None,
        latency_s: float = 0.0,
        jitter_s: float = 0.0,
        loss: float = 0.0,
        entry: Optional[str] = None,
    ) -> "Topology":
        """A k-ary fat tree (k pods of k/2 edge + k/2 aggregation
        switches, (k/2)² cores) with the devices as hosts.

        ``k`` defaults to the smallest even arity whose ``k³/4`` host
        capacity fits the device list.  Fabric (edge↔agg↔core) links
        run at ``fabric_mbps`` (default 4× the host speed), so the
        tree has genuine oversubscription structure for the engine's
        per-link contention to bite on.
        """
        if not devices:
            raise ValueError("fat tree needs at least one device")
        if k is None:
            k = 2
            while k * k * k // 4 < len(devices):
                k += 2
        if k < 2 or k % 2:
            raise ValueError("fat-tree arity k must be even and >= 2")
        if k * k * k // 4 < len(devices):
            raise ValueError(
                f"k={k} fat tree hosts {k * k * k // 4} devices, "
                f"got {len(devices)}"
            )
        fabric = fabric_mbps if fabric_mbps is not None else mbps * 4.0
        half = k // 2
        topo = cls(name=f"fat-tree(k={k})")
        cores = [f"core{i}" for i in range(half * half)]
        for pod in range(k):
            aggs = [f"agg{pod}.{j}" for j in range(half)]
            edges = [f"edge{pod}.{j}" for j in range(half)]
            for j, agg in enumerate(aggs):
                for edge in edges:
                    topo.add_link(
                        NetworkLink.from_mbps(
                            f"{edge}<->{agg}", edge, agg, fabric,
                            latency_s, jitter_s, loss,
                        )
                    )
                for c in range(half):
                    core = cores[j * half + c]
                    topo.add_link(
                        NetworkLink.from_mbps(
                            f"{agg}<->{core}", agg, core, fabric,
                            latency_s, jitter_s, loss,
                        )
                    )
        for i, device in enumerate(devices):
            e = i // half  # `half` hosts per edge switch
            edge = f"edge{e // half}.{e % half}"
            topo.add_link(
                NetworkLink.from_mbps(
                    f"{device}<->{edge}", device, edge, mbps,
                    latency_s, jitter_s, loss,
                )
            )
        topo.entry = entry if entry is not None else "core0"
        return topo
