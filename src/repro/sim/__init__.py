"""Planet-scale scenario simulation: topologies, workloads, churn.

The :mod:`repro.cluster.simulator` event loop grew up: this package
generalises it from "one shared-bandwidth LAN, a list of arrival
times" to full scenarios —

* :mod:`repro.sim.topology` — named :class:`NetworkLink` objects with
  bandwidth / latency / jitter / loss, ``star`` / ``mesh`` /
  ``fat-tree`` builders, shortest-path routing and per-link FIFO
  contention.  The old single :class:`~repro.cost.comm.NetworkModel`
  is the degenerate one-link topology (:meth:`Topology.bus`),
  bit-compatible with the pre-2.0 simulator.
* :mod:`repro.workload.processes` — lazy :class:`ArrivalProcess`
  generators (diurnal, flash crowd, trace replay, composite) that
  scale to millions of requests without materialising them.
* :mod:`repro.sim.scenario` — correlated device churn and mobility
  (devices leaving and joining mid-run), driven through the same
  replan ladder as the fault-tolerance layer.
* :mod:`repro.sim.engine` — the shared event loop itself, consumed by
  both this package and the legacy :func:`simulate_plan` /
  :func:`simulate_adaptive` adapters.

:func:`simulate_scenario` is the front door.
"""

from repro.sim.engine import run_scenario
from repro.sim.result import SimResult, SimStats, TaskRecord
from repro.sim.scenario import ChurnEvent, correlated_churn, simulate_scenario
from repro.sim.topology import NetworkLink, Topology

__all__ = [
    "ChurnEvent",
    "NetworkLink",
    "SimResult",
    "SimStats",
    "TaskRecord",
    "Topology",
    "correlated_churn",
    "run_scenario",
    "simulate_scenario",
]
