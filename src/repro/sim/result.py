"""Simulation outputs: per-task records and summary statistics.

:class:`TaskRecord` / :class:`SimResult` moved here from
:mod:`repro.cluster.simulator` in 2.0 (which re-exports them, so old
imports keep working).  :class:`SimStats` is the constant-memory
summary the engine produces under ``keep_records=False`` — the mode
the million-request benchmark (:mod:`repro.bench.sim`) runs in, where
materialising one :class:`TaskRecord` per task would dominate the
event loop itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.runtime.trace import TraceEvent

__all__ = ["TaskRecord", "SimResult", "SimStats"]


@dataclass(frozen=True)
class TaskRecord:
    """One task's journey through the cluster."""

    task_id: int
    arrival: float
    started: float
    completion: float
    plan_name: str

    @property
    def latency(self) -> float:
        return self.completion - self.arrival

    @property
    def waiting(self) -> float:
        return self.started - self.arrival


@dataclass
class SimResult:
    """Aggregate simulation output."""

    tasks: List[TaskRecord]
    makespan: float
    device_busy: Dict[str, float]
    plan_usage: Dict[str, int] = field(default_factory=dict)
    #: Collected trace events (empty unless the run passed ``trace=``).
    trace: Tuple[TraceEvent, ...] = ()
    #: Task ids refused admission (only when ``queue_capacity`` was set).
    shed: Tuple[int, ...] = ()

    @property
    def completed(self) -> int:
        return len(self.tasks)

    @property
    def submitted(self) -> int:
        return len(self.tasks) + len(self.shed)

    @property
    def avg_latency(self) -> float:
        if not self.tasks:
            return 0.0
        return sum(t.latency for t in self.tasks) / len(self.tasks)

    @property
    def max_latency(self) -> float:
        return max((t.latency for t in self.tasks), default=0.0)

    def percentile_latency(self, q: float) -> float:
        """Latency percentile ``q`` in [0, 100] (nearest-rank)."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self.tasks:
            return 0.0
        ordered = sorted(t.latency for t in self.tasks)
        rank = min(len(ordered) - 1, max(0, int(round(q / 100 * (len(ordered) - 1)))))
        return ordered[rank]

    @property
    def throughput(self) -> float:
        """Completed tasks per second of makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.completed / self.makespan

    def utilization(self, device_name: str) -> float:
        """Busy fraction of a device over the makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.device_busy.get(device_name, 0.0) / self.makespan

    def steady_state(self, warmup_tasks: int) -> "SimResult":
        """A view with the first ``warmup_tasks`` completions dropped.

        Pipeline fill-up biases short runs: the first tasks see an empty
        pipeline (low latency) while throughput over the whole makespan
        under-counts the filled regime.  The trimmed view measures the
        post-warm-up window; device-busy totals are scaled by the kept
        task fraction (exact for deterministic service times).
        """
        if warmup_tasks < 0:
            raise ValueError("warmup_tasks must be non-negative")
        if warmup_tasks == 0 or warmup_tasks >= len(self.tasks):
            return self
        by_completion = sorted(self.tasks, key=lambda t: t.completion)
        kept = by_completion[warmup_tasks:]
        window_start = by_completion[warmup_tasks - 1].completion
        fraction = len(kept) / len(self.tasks)
        return SimResult(
            tasks=sorted(kept, key=lambda t: t.task_id),
            makespan=self.makespan - window_start,
            device_busy={k: v * fraction for k, v in self.device_busy.items()},
            plan_usage=dict(self.plan_usage),
            trace=self.trace,
            shed=self.shed,
        )


@dataclass
class SimStats:
    """Constant-memory simulation summary (``keep_records=False``).

    Holds only aggregates — no per-task records, no shed id list — so
    memory stays O(devices + plans) however many requests the arrival
    process generates.  ``n_events`` counts processed simulator events,
    the numerator of the ``BENCH_sim.json`` events/s figure.
    """

    completed: int
    shed_count: int
    makespan: float
    device_busy: Dict[str, float]
    plan_usage: Dict[str, int]
    sum_latency: float
    max_latency: float
    n_events: int

    @property
    def submitted(self) -> int:
        return self.completed + self.shed_count

    @property
    def avg_latency(self) -> float:
        if not self.completed:
            return 0.0
        return self.sum_latency / self.completed

    @property
    def throughput(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.completed / self.makespan

    def utilization(self, device_name: str) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.device_busy.get(device_name, 0.0) / self.makespan
