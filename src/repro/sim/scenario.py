"""Scenario composition: topology × workload × churn → one run.

:func:`simulate_scenario` is the 2.0 front door to the event engine.
It accepts everything :func:`repro.simulate` does for the plan side —
a scheme name, a :class:`~repro.schemes.Scheme`, a ready
:class:`~repro.core.plan.PipelinePlan` or an
:class:`~repro.adaptive.switcher.AdaptiveSwitcher` — and adds the
scenario dimensions:

* ``topology`` — a :class:`~repro.sim.topology.Topology`; transfers
  route hop by hop with per-link FIFO contention.  The default
  :meth:`Topology.bus` reproduces the pre-2.0 single-WLAN simulator
  bit for bit.
* ``arrivals`` — a lazy :class:`~repro.workload.ArrivalProcess` (or a
  plain list of submit times).
* ``churn`` — :class:`ChurnEvent` entries: devices leave and join
  mid-run, and each change re-plans the survivors through the same
  replan/degraded ladder the fault-tolerance layer uses, emitting
  ``device_dead`` / ``device_join`` / ``replan`` / ``degraded`` trace
  events.  :func:`correlated_churn` builds the correlated-failure
  bursts (a rack power cut, a WiFi segment dropping) that independent
  per-device fault schedules cannot express.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.cost.comm import NetworkModel, wifi_50mbps
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.runtime.timing import PlanTiming, plan_timing
from repro.runtime.trace import TraceEvent, coerce_tracer
from repro.sim.engine import Transmission, run_scenario, token_bus_transmissions
from repro.sim.topology import Topology
from repro.workload.processes import ArrivalProcess

__all__ = ["ChurnEvent", "correlated_churn", "simulate_scenario"]


@dataclass(frozen=True)
class ChurnEvent:
    """One device leaving or (re)joining the cluster at ``time``."""

    time: float
    device: str
    kind: str = "leave"

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("churn time must be non-negative")
        if self.kind not in ("leave", "join"):
            raise ValueError(
                f"churn kind must be 'leave' or 'join', not {self.kind!r}"
            )


def correlated_churn(
    devices: "Sequence[str]",
    at: float,
    stagger_s: float = 0.0,
    rejoin_after: Optional[float] = None,
) -> "Tuple[ChurnEvent, ...]":
    """A correlated failure burst: ``devices`` all leave around ``at``
    (``stagger_s`` apart, modelling detection skew), and optionally all
    rejoin ``rejoin_after`` seconds later — the rack-power-cut /
    WiFi-segment-drop pattern."""
    if not devices:
        raise ValueError("a churn burst needs at least one device")
    events: "List[ChurnEvent]" = []
    for i, device in enumerate(devices):
        leave_at = at + i * stagger_s
        events.append(ChurnEvent(leave_at, device, "leave"))
        if rejoin_after is not None:
            events.append(ChurnEvent(leave_at + rejoin_after, device, "join"))
    return tuple(sorted(events, key=lambda e: (e.time, e.device)))


def _topology_transmissions(topology: Topology, network: NetworkModel):
    """Per-stage :class:`Transmission` templates: invert the flat-model
    communication times back to bytes, then route anchor → device over
    the topology (see :meth:`PlanTiming.stage_transfers`)."""

    def for_timing(timing: PlanTiming):
        return tuple(
            tuple(
                Transmission(topology.route(src, dst), nbytes)
                for src, dst, nbytes in stage
            )
            for stage in timing.stage_transfers(network, entry=topology.entry)
        )

    return for_timing


def simulate_scenario(
    model,
    plan_or_scheme,
    cluster=None,
    *,
    topology: Optional[Topology] = None,
    network: Optional[NetworkModel] = None,
    arrivals=None,
    options: Optional[CostOptions] = None,
    churn: "Sequence[ChurnEvent]" = (),
    trace=None,
    queue_capacity: Optional[int] = None,
    seed: int = 0,
    sample_network: bool = False,
    keep_records: bool = True,
):
    """Simulate one scenario; see the module docstring.

    ``arrivals`` is an :class:`~repro.workload.ArrivalProcess`
    (streamed lazily under ``numpy.random.default_rng(seed)``) or a
    plain sequence of submit times.  ``sample_network=True`` samples
    per-link jitter and loss instead of charging their deterministic
    expectations.  ``keep_records=False`` returns a constant-memory
    :class:`~repro.sim.result.SimStats` instead of a full
    :class:`~repro.sim.result.SimResult` — the million-request mode.

    Churn needs a scheme (or scheme name) plus ``cluster`` so the
    survivors can be re-planned; a device whose first churn event is a
    ``join`` starts outside the cluster and enters mid-run (mobility).
    """
    from repro.adaptive.switcher import AdaptiveSwitcher
    from repro.schemes import Scheme, get_scheme

    tracer = coerce_tracer(trace)
    if topology is None:
        topology = Topology.bus(network or wifi_50mbps())
    network = network or topology.as_network_model()
    options = options or DEFAULT_OPTIONS
    churn_events = tuple(churn)

    if arrivals is None:
        raise ValueError(
            "simulate_scenario() needs arrivals= (an ArrivalProcess or "
            "a sequence of submit times)"
        )
    if isinstance(arrivals, ArrivalProcess) or hasattr(arrivals, "times"):
        arrival_iter: "Iterator[float]" = arrivals.times(
            np.random.default_rng(seed)
        )
    else:
        arrival_iter = iter(sorted(float(t) for t in arrivals))

    if topology.is_bus and not topology.contended:
        transmissions_for = None
    elif topology.is_bus:
        transmissions_for = token_bus_transmissions(topology.links[0])
    else:
        transmissions_for = _topology_transmissions(topology, network)
    link_rng = (
        np.random.default_rng(seed + 1) if sample_network else None
    )

    # -- resolve the plan side ----------------------------------------
    scheme = None
    if isinstance(plan_or_scheme, str):
        plan_or_scheme = get_scheme(plan_or_scheme)
    if isinstance(plan_or_scheme, AdaptiveSwitcher):
        if churn_events:
            raise ValueError(
                "churn= is not supported with an AdaptiveSwitcher replay; "
                "pass a scheme so the survivors can be re-planned"
            )
        switcher = plan_or_scheme
        timings = switcher.plan_timings(model, network, options)
        initial = timings[switcher.active.name]

        def pick(now: float, depth: int) -> PlanTiming:
            active = switcher.on_arrival(now, queue_depth=depth)
            return timings[active.name]

        return run_scenario(
            arrival_iter, initial, pick,
            transmissions_for=transmissions_for, tracer=tracer,
            queue_capacity=queue_capacity, rng=link_rng,
            keep_records=keep_records,
        )
    if isinstance(plan_or_scheme, Scheme):
        scheme = plan_or_scheme
        if cluster is None:
            raise ValueError("a scheme needs cluster= to plan over")
    if scheme is None and churn_events:
        raise ValueError(
            "simulating churn needs a scheme (or scheme name) to re-plan "
            "the survivors — a bare plan cannot be rebuilt"
        )

    # -- initial live set (devices joining later start outside) -------
    if churn_events and cluster is not None:
        names = {d.name for d in cluster}
        unknown = sorted(
            {e.device for e in churn_events} - names
        )
        if unknown:
            raise ValueError(
                f"churn names devices not in the cluster: "
                f"{', '.join(unknown)}"
            )
        first_kind: "Dict[str, str]" = {}
        for event in sorted(churn_events, key=lambda e: e.time):
            first_kind.setdefault(event.device, event.kind)
        live = {
            name for name in names
            if first_kind.get(name, "leave") != "join"
        }
        if not live:
            raise ValueError("every device joins mid-run; none left to plan")
    else:
        live = {d.name for d in cluster} if cluster is not None else set()

    if scheme is not None:
        from repro.cluster.device import Cluster

        members = tuple(d for d in cluster if d.name in live)
        plan = scheme.plan(model, Cluster(members), network, options)
        base_name = scheme.name
    else:
        plan = plan_or_scheme
        base_name = plan.mode
    timing = plan_timing(model, plan, network, options, name=base_name)
    state = {"timing": timing}

    def on_churn(now: float, event: ChurnEvent) -> Optional[PlanTiming]:
        from repro.cluster.device import Cluster
        from repro.runtime.faults import StageFailure
        from repro.schemes.base import PlanningError
        from repro.schemes.local import local_fallback_plan

        if event.kind == "leave":
            if event.device not in live:
                return None
            live.discard(event.device)
            if tracer is not None:
                tracer.emit(
                    TraceEvent("device_dead", -1, 0, event.device, now, now)
                )
        else:
            if event.device in live:
                return None
            live.add(event.device)
            if tracer is not None:
                tracer.emit(
                    TraceEvent("device_join", -1, 0, event.device, now, now)
                )
        survivors = tuple(d for d in cluster if d.name in live)
        if not survivors:
            raise StageFailure("every device in the cluster is dead")
        try:
            fresh = scheme.plan(model, Cluster(survivors), network, options)
            kind = "replan"
        except PlanningError:
            best = max(survivors, key=lambda d: d.capacity)
            fresh = local_fallback_plan(model, best)
            kind = "degraded"
        state["timing"] = plan_timing(
            model, fresh, network, options, name=f"{base_name}+{kind}"
        )
        if tracer is not None:
            dead = ",".join(sorted({d.name for d in cluster} - live))
            tracer.emit(TraceEvent(kind, -1, 0, dead, now, now))
        return state["timing"]

    return run_scenario(
        arrival_iter,
        timing,
        lambda now, depth: state["timing"],
        transmissions_for=transmissions_for,
        churn=[(e.time, e) for e in churn_events],
        on_churn=on_churn if churn_events else None,
        tracer=tracer,
        queue_capacity=queue_capacity,
        rng=link_rng,
        keep_records=keep_records,
    )
