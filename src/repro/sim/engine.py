"""The shared discrete-event engine behind every cluster simulation.

This is the 2.0 generalisation of the former
``repro.cluster.simulator._run_event_loop``: stages are
deterministic-service FIFO servers fed by the plan's timing tables
(:func:`repro.runtime.timing.plan_timing`), tasks flow stage to stage,
and per-device busy time accrues from each stage's compute share.
Three things grew:

* **Lazy arrivals** — ``arrivals`` is any (possibly infinite,
  lazily-generated) nondecreasing iterable of submit times; at most
  one pending arrival lives in the event heap, so million-request
  workloads stream through in constant memory.
* **Per-link network contention** — instead of one boolean WLAN
  token, each stage may declare :class:`Transmission` objects routed
  over named :class:`~repro.sim.topology.NetworkLink` sequences; every
  link keeps its own FIFO, hops are store-and-forward, and compute
  starts once all of a stage's transfers have landed.  The legacy
  ``shared_medium=True`` mode is the degenerate single-link case
  (:func:`token_bus_transmissions`) and the legacy default folds
  communication into stage service (``transmissions_for=None``) —
  both bit-compatible with the pre-2.0 loop.
* **Scenario events** — ``churn`` entries fire an ``on_churn``
  callback mid-run (device leave/join, mobility); the callback may
  return a fresh :class:`~repro.runtime.timing.PlanTiming`, adopted at
  the next service boundary exactly like an adaptive plan switch.

Event ordering is deterministic: the heap key is ``(time, priority,
sequence)`` with churn < arrivals < everything else at equal
timestamps, and the sequence number preserving push order — the same
total order the pre-2.0 loop produced by pushing all arrivals first.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.runtime.trace import TraceEvent, Tracer
from repro.sim.result import SimResult, SimStats, TaskRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.timing import PlanTiming
    from repro.sim.topology import NetworkLink

__all__ = ["Transmission", "run_scenario", "token_bus_transmissions"]

#: Heap priorities: churn reshapes the cluster before a same-instant
#: arrival sees it; arrivals beat completions (the pre-2.0 tie order).
_P_CHURN = 0
_P_ARRIVAL = 1
_P_OTHER = 2


@dataclass(frozen=True)
class Transmission:
    """One stage transfer: ``nbytes`` along a route of links.

    ``duration`` overrides the per-hop transfer time (used by the
    legacy shared-medium mode, where the stage's aggregate analytic
    communication time rides one token link).
    """

    route: "Tuple[NetworkLink, ...]"
    nbytes: float = 0.0
    duration: Optional[float] = None


def token_bus_transmissions(link) -> "Callable":
    """Per-stage transmissions for the legacy ``shared_medium`` WLAN:
    every stage's whole communication phase is one fixed-duration
    transfer over the single ``link`` (the old network token)."""

    def for_timing(timing: "PlanTiming"):
        return tuple(
            (Transmission((link,), duration=st.comm),)
            for st in timing.stages
        )

    return for_timing


@dataclass
class _InFlight:
    task_id: int
    arrival: float
    started: float
    timing: "PlanTiming"
    entry: float = 0.0  # when the task joined its current stage queue


class _Transfer:
    """Runtime state of one Transmission instance for one task."""

    __slots__ = ("spec", "hop", "group")

    def __init__(self, spec: Transmission, group: "_Group") -> None:
        self.spec = spec
        self.hop = 0
        self.group = group


class _Group:
    """Outstanding-transfer counter for one (task, stage) comm phase."""

    __slots__ = ("remaining", "stage_idx", "task")

    def __init__(self, remaining: int, stage_idx: int, task: _InFlight) -> None:
        self.remaining = remaining
        self.stage_idx = stage_idx
        self.task = task


class _LinkState:
    __slots__ = ("busy", "queue")

    def __init__(self) -> None:
        self.busy = False
        self.queue: "Deque[_Transfer]" = deque()


def run_scenario(
    arrivals: "Iterable[float]",
    initial_timing: "PlanTiming",
    pick_timing,  # (now, in_system) -> desired PlanTiming
    *,
    transmissions_for=None,  # (timing) -> per-stage transmissions | None
    churn: "Iterable[Tuple[float, object]]" = (),
    on_churn=None,  # (now, payload) -> Optional[PlanTiming]
    tracer: Optional[Tracer] = None,
    queue_capacity: Optional[int] = None,
    rng=None,
    keep_records: bool = True,
):
    """Run one scenario; see the module docstring for the model.

    Plan switches happen at service boundaries: when no stage is
    mid-service, no transfer is in flight and every waiting task is
    still unstarted (in the first stage's queue), the backlog migrates
    to the newly desired plan.  Tasks already inside the pipeline
    always finish under the plan that started them.

    ``queue_capacity`` bounds the number of tasks in the system
    (queued *or* in service, the M/D/1/K convention): an arrival that
    finds ``queue_capacity`` tasks in flight is shed — recorded in the
    result and emitted as a ``shed`` trace event.

    ``rng`` feeds per-link jitter/loss sampling; ``None`` keeps every
    link at its deterministic expected transfer time.

    Returns a :class:`~repro.sim.result.SimResult`, or a constant-memory
    :class:`~repro.sim.result.SimStats` when ``keep_records=False``.
    """
    seq = itertools.count()
    heap: "List[Tuple[float, int, int, str, object]]" = []
    for at, payload in churn:
        heapq.heappush(heap, (float(at), _P_CHURN, next(seq), "churn", payload))

    arrival_iter = iter(arrivals)
    next_task_id = 0
    last_arrival = None

    def push_next_arrival() -> None:
        nonlocal next_task_id, last_arrival
        for t in arrival_iter:
            t = float(t)
            if last_arrival is not None and t < last_arrival:
                raise ValueError(
                    "arrival times must be nondecreasing "
                    f"(got {t} after {last_arrival})"
                )
            last_arrival = t
            heapq.heappush(heap, (t, _P_ARRIVAL, next(seq), "arrival", next_task_id))
            next_task_id += 1
            return

    push_next_arrival()

    current = initial_timing
    desired = initial_timing
    queues: "List[Deque[_InFlight]]" = [deque() for _ in range(current.n_stages)]
    busy: "List[bool]" = [False] * current.n_stages
    device_busy: "Dict[str, float]" = {}
    plan_usage: "Dict[str, int]" = {}
    records: "List[TaskRecord]" = []
    shed: "List[int]" = []
    in_system = 0
    makespan = 0.0
    n_events = 0
    # keep_records=False aggregates:
    completed = 0
    shed_count = 0
    sum_latency = 0.0
    max_latency = 0.0

    link_states: "Dict[object, _LinkState]" = {}
    net_inflight = 0
    # Per-stage transmission templates, cached per live timing table.
    template_cache: "Dict[int, Tuple[object, object]]" = {}

    def stage_templates(timing: "PlanTiming"):
        if transmissions_for is None:
            return None
        cached = template_cache.get(id(timing))
        if cached is not None and cached[0] is timing:
            return cached[1]
        templates = transmissions_for(timing)
        template_cache[id(timing)] = (timing, templates)
        return templates

    def maybe_swap() -> None:
        nonlocal current, queues, busy
        if desired is current:
            return
        if any(busy) or any(len(q) for q in queues[1:]):
            return  # tasks mid-pipeline must finish first
        if net_inflight:
            return  # transfers in flight
        backlog = queues[0]
        current = desired
        queues = [deque() for _ in range(current.n_stages)]
        busy = [False] * current.n_stages
        for task in backlog:
            task.timing = current
            queues[0].append(task)

    def try_link(link, now: float) -> None:
        state = link_states[link]
        if state.busy or not state.queue:
            return
        transfer = state.queue.popleft()
        state.busy = True
        if transfer.spec.duration is not None:
            hop_time = transfer.spec.duration
        else:
            hop_time = link.transfer_time(transfer.spec.nbytes, rng)
        heapq.heappush(
            heap, (now + hop_time, _P_OTHER, next(seq), "hop", transfer)
        )

    def try_start(stage_idx: int, now: float) -> None:
        nonlocal makespan, net_inflight
        timing = current
        if busy[stage_idx] or not queues[stage_idx]:
            return
        task = queues[stage_idx].popleft()
        assert task.timing is timing, "task queued under a stale timing"
        busy[stage_idx] = True
        if stage_idx == 0 and task.started < 0:
            task.started = now
        if tracer is not None:
            tracer.emit(
                TraceEvent(
                    "enqueue", task.task_id, stage_idx, "", task.entry, now
                )
            )
        for name, t_comp in timing.stages[stage_idx].busy_shares:
            device_busy[name] = device_busy.get(name, 0.0) + t_comp
            if tracer is not None:
                tracer.emit(
                    TraceEvent(
                        "compute", task.task_id, stage_idx, name,
                        now, now + t_comp,
                    )
                )
        templates = stage_templates(timing)
        if templates is None:
            service = timing.stages[stage_idx].service
            heapq.heappush(
                heap,
                (now + service, _P_OTHER, next(seq), "done", (stage_idx, task)),
            )
            return
        transmissions = templates[stage_idx]
        live = tuple(t for t in transmissions if t.route)
        if not live:
            comp = timing.stages[stage_idx].comp
            heapq.heappush(
                heap,
                (now + comp, _P_OTHER, next(seq), "done", (stage_idx, task)),
            )
            return
        group = _Group(len(live), stage_idx, task)
        net_inflight += len(live)
        for spec in live:
            transfer = _Transfer(spec, group)
            first = spec.route[0]
            if first not in link_states:
                link_states[first] = _LinkState()
            link_states[first].queue.append(transfer)
            try_link(first, now)

    while heap:
        now, _, _, kind, payload = heapq.heappop(heap)
        n_events += 1
        if kind == "arrival":
            task_id = payload
            desired = pick_timing(now, in_system)
            maybe_swap()
            if queue_capacity is not None and in_system >= queue_capacity:
                if keep_records:
                    shed.append(task_id)
                else:
                    shed_count += 1
                if tracer is not None:
                    tracer.emit(TraceEvent("shed", task_id, 0, "", now, now))
                push_next_arrival()
                continue
            in_system += 1
            makespan = max(makespan, now)
            task = _InFlight(task_id, now, -1.0, current, entry=now)
            queues[0].append(task)
            try_start(0, now)
            push_next_arrival()
        elif kind == "hop":
            transfer = payload  # type: ignore[assignment]
            makespan = max(makespan, now)
            link = transfer.spec.route[transfer.hop]
            link_states[link].busy = False
            transfer.hop += 1
            if transfer.hop < len(transfer.spec.route):
                nxt = transfer.spec.route[transfer.hop]
                if nxt not in link_states:
                    link_states[nxt] = _LinkState()
                link_states[nxt].queue.append(transfer)
                try_link(nxt, now)
            else:
                group = transfer.group
                group.remaining -= 1
                net_inflight -= 1
                if group.remaining == 0:
                    comp = group.task.timing.stages[group.stage_idx].comp
                    heapq.heappush(
                        heap,
                        (
                            now + comp,
                            _P_OTHER,
                            next(seq),
                            "done",
                            (group.stage_idx, group.task),
                        ),
                    )
            try_link(link, now)
        elif kind == "churn":
            if on_churn is not None:
                fresh = on_churn(now, payload)
                if fresh is not None:
                    desired = fresh
                    maybe_swap()
                    try_start(0, now)
        else:  # "done"
            stage_idx, task = payload  # type: ignore[misc]
            makespan = max(makespan, now)
            busy[stage_idx] = False
            if stage_idx == task.timing.n_stages - 1:
                in_system -= 1
                plan_usage[task.timing.name] = (
                    plan_usage.get(task.timing.name, 0) + 1
                )
                if keep_records:
                    records.append(
                        TaskRecord(
                            task.task_id, task.arrival, task.started, now,
                            task.timing.name,
                        )
                    )
                else:
                    completed += 1
                    latency = now - task.arrival
                    sum_latency += latency
                    if latency > max_latency:
                        max_latency = latency
            else:
                task.entry = now
                queues[stage_idx + 1].append(task)
                try_start(stage_idx + 1, now)
            maybe_swap()
            # A swap may have replaced the queues with the new plan's
            # (possibly shorter) stage list; only restart valid stages.
            if stage_idx < len(queues):
                try_start(stage_idx, now)
            try_start(0, now)

    if not keep_records:
        return SimStats(
            completed, shed_count, makespan, device_busy, plan_usage,
            sum_latency, max_latency, n_events,
        )
    records.sort(key=lambda r: r.task_id)
    trace = tracer.events if tracer is not None else ()
    return SimResult(
        records, makespan, device_busy, plan_usage, trace, tuple(shed)
    )
