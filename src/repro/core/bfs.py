"""Exhaustive optimal search (the paper's §V-C "BFS" baseline).

Enumerates every contiguous unit split and every device allocation per
stage, with branch-and-bound pruning on the incumbent period and the
latency budget.  Devices are grouped into capacity classes — the stage
cost depends only on the *multiset* of assigned capacities, which
collapses the ``8! = 40320`` orderings of the paper's testbed to a few
dozen class vectors per stage and is what makes exact search feasible
at all on small instances.  Complexity is still exponential in
(units × classes); Table II reproduces exactly that blow-up.
"""

from __future__ import annotations

import itertools
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.device import Cluster, Device
from repro.core.plan import PipelinePlan, StagePlan
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.cost.stage_cost import stage_time
from repro.cost.tables import SegmentTable, get_segment_table
from repro.models.graph import Model
from repro.partition.regions import Region
from repro.partition.strips import weighted_partition

__all__ = ["BFSResult", "bfs_optimal"]


@dataclass(frozen=True)
class BFSResult:
    """Outcome of the exhaustive search."""

    plan: Optional[PipelinePlan]
    period: float
    latency: float
    optimal: bool  # False when the deadline cut the search short
    nodes_explored: int
    elapsed_s: float


def _device_classes(cluster: Cluster) -> "List[Tuple[Device, int]]":
    """Group devices into (representative, count) capacity classes."""
    classes: "Dict[Tuple[float, float], List[Device]]" = {}
    for device in cluster:
        classes.setdefault((device.capacity, device.alpha), []).append(device)
    ordered = sorted(classes.items(), key=lambda kv: -kv[0][0])
    return [(devs[0], len(devs)) for _, devs in ordered]


def bfs_optimal(
    model: Model,
    cluster: Cluster,
    network: NetworkModel,
    options: CostOptions = DEFAULT_OPTIONS,
    t_lim: float = math.inf,
    deadline_s: Optional[float] = None,
    max_stages: Optional[int] = None,
    table: Optional[SegmentTable] = None,
    stage_cache: "Optional[Dict[Tuple[int, int, Tuple[int, ...]], float]]" = None,
) -> BFSResult:
    """Find the minimum-period pipeline by exhaustive search.

    ``deadline_s`` bounds wall-clock; if hit, the best incumbent is
    returned with ``optimal=False``.  ``max_stages`` optionally caps the
    stage count (useful to keep tiny benchmark instances comparable).

    Stage costs are answered by the shared vectorized
    :class:`~repro.cost.tables.SegmentTable` (pass ``table`` to supply a
    caller-managed one), which is bit-identical to ``stage_time``; pass
    ``stage_cache`` to reuse evaluated (segment, allocation) costs
    across repeated searches over the same deployment.
    """
    started = time.perf_counter()
    if table is None:
        table = get_segment_table(model, options)
    classes = _device_classes(cluster)
    n_classes = len(classes)
    n_units = model.n_units
    class_devices: "List[List[Device]]" = []
    for (rep, count) in classes:
        members = [d for d in cluster if (d.capacity, d.alpha) == (rep.capacity, rep.alpha)]
        class_devices.append(members)

    if stage_cache is None:
        stage_cache = {}

    def make_assignments(
        start: int, end: int, alloc: "Tuple[int, ...]", offsets: "Tuple[int, ...]"
    ):
        """Concrete (device, region) pairs; ``offsets`` tracks how many
        devices of each class earlier stages already consumed, so no
        device appears in two pipelined stages."""
        devices: "List[Device]" = []
        for cls_idx, count in enumerate(alloc):
            base = offsets[cls_idx]
            devices.extend(class_devices[cls_idx][base : base + count])
        _, h, w = model.out_shape(end - 1)
        rows = weighted_partition(h, [d.capacity for d in devices])
        return tuple(
            (device, Region.from_bounds(iv.start, iv.end, 0, w))
            for device, iv in zip(devices, rows)
        )

    def stage_cost_of(start: int, end: int, alloc: "Tuple[int, ...]") -> float:
        # Cost depends only on the capacity multiset, so offsets of 0
        # are fine for evaluation.
        key = (start, end, alloc)
        cached = stage_cache.get(key)
        if cached is not None:
            return cached
        if table is not None and table.exact(start, end):
            devices: "List[Device]" = []
            for cls_idx, count in enumerate(alloc):
                devices.extend(class_devices[cls_idx][:count])
            _, h, _ = model.out_shape(end - 1)
            rows = weighted_partition(h, [d.capacity for d in devices])
            cost = table.stage_total(
                start, end, list(zip(devices, rows)), network,
                with_head=end == n_units,
            )
        else:
            assignments = make_assignments(
                start, end, alloc, tuple(0 for _ in alloc)
            )
            cost = stage_time(
                model, start, end, assignments, network, options,
                with_head=end == n_units,
            ).total
        stage_cache[key] = cost
        return cost

    best_period = math.inf
    best_latency = math.inf
    # Each chosen stage is recorded abstractly as (start, end, alloc).
    best_choice: "Optional[Tuple[Tuple[int, int, Tuple[int, ...]], ...]]" = None
    nodes = 0
    timed_out = False

    def allocations(remaining: "Tuple[int, ...]"):
        ranges = [range(r + 1) for r in remaining]
        for vec in itertools.product(*ranges):
            if sum(vec) >= 1:
                yield vec

    def dfs(
        pos: int,
        remaining: "Tuple[int, ...]",
        period: float,
        latency: float,
        choice: "List[Tuple[int, int, Tuple[int, ...]]]",
    ) -> None:
        nonlocal best_period, best_latency, best_choice, nodes, timed_out
        if timed_out:
            return
        if deadline_s is not None and time.perf_counter() - started > deadline_s:
            timed_out = True
            return
        if pos == n_units:
            if (period, latency) < (best_period, best_latency):
                best_period, best_latency = period, latency
                best_choice = tuple(choice)
            return
        if max_stages is not None and len(choice) >= max_stages:
            return
        for end in range(pos + 1, n_units + 1):
            for alloc in allocations(remaining):
                nodes += 1
                cost = stage_cost_of(pos, end, alloc)
                new_period = max(period, cost)
                new_latency = latency + cost
                if new_period >= best_period or new_latency > t_lim:
                    continue
                choice.append((pos, end, alloc))
                dfs(
                    pos=end,
                    remaining=tuple(r - a for r, a in zip(remaining, alloc)),
                    period=new_period,
                    latency=new_latency,
                    choice=choice,
                )
                choice.pop()
                if timed_out:
                    return

    dfs(0, tuple(count for _, count in classes), 0.0, 0.0, [])
    elapsed = time.perf_counter() - started
    if best_choice is None:
        return BFSResult(None, math.inf, math.inf, not timed_out, nodes, elapsed)
    # Materialise the winning abstract stages with distinct devices.
    offsets = [0] * n_classes
    stages: "List[StagePlan]" = []
    for start_u, end_u, alloc in best_choice:
        assignments = make_assignments(start_u, end_u, alloc, tuple(offsets))
        stages.append(StagePlan(start_u, end_u, assignments))
        offsets = [o + a for o, a in zip(offsets, alloc)]
    plan = PipelinePlan(model.name, tuple(stages), mode="pipelined")
    return BFSResult(plan, best_period, best_latency, not timed_out, nodes, elapsed)
