"""Branch-and-bound *exact* heterogeneous planner.

Algorithm 1 + Algorithm 2 is a heuristic pair: the DP is exact only for
the homogenised cluster (Eq. 12), and the greedy device mapping can lose
to layouts the averaging step cannot see.  This module searches the
heterogeneous stage space directly — every way to cut the unit chain
into contiguous stages *and* every assignment of a device subset to
each stage — and reports the true minimum period, which bounds the
greedy pipeline's optimality gap (``repro.bench.exact`` /
``BENCH_exact.json``).

The search stays exact yet tractable (≤ :data:`MAX_EXACT_DEVICES`
devices) through three standard ingredients:

* **Canonical stage realization.**  A stage is fully determined by its
  segment and device *set*: devices are ordered strongest-first (ties
  keep cluster order) and the output rows are split with
  :func:`~repro.partition.strips.weighted_partition` — exactly
  Algorithm 2's realization — or
  :func:`~repro.partition.strips.equal_partition` when every capacity
  is equal, which makes the homogeneous search space coincide with
  Algorithm 1's DP space (so ``exact == DP`` there, asserted by
  ``tests/test_exact_planner.py``).  Stage costs come from the shared
  vectorized :class:`~repro.cost.tables.SegmentTable`, bit-identical to
  ``plan_cost`` on the realized plan.
* **Greedy incumbent.**  The PICO plan (DP + Algorithm 2), re-costed
  through the same canonical realization, seeds the search — the exact
  result can therefore never be worse than greedy.
* **Relaxed suffix bound.**  ``LB[u]``, the cheapest any stage chain
  covering units ``[u, n)`` could possibly cost ignoring device
  exhaustion (each stage may reuse the globally best subset), prunes
  any prefix whose period already exceeds the incumbent.

``period_bound`` caps the pruning threshold from above: a bound of
``0.0`` prunes every node immediately and the planner returns the
greedy incumbent untouched — the degenerate-pruning regression anchor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.cluster.device import Cluster, Device
from repro.core.plan import PipelinePlan, StagePlan
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.cost.tables import get_segment_table
from repro.models.graph import Model
from repro.partition.regions import Region
from repro.partition.strips import equal_partition, weighted_partition
from repro.schemes.base import PlanningError, Scheme

__all__ = [
    "MAX_EXACT_DEVICES",
    "ExactStage",
    "ExactPlan",
    "ExactScheme",
    "plan_exact",
    "realize_exact",
]

#: Hard ceiling on the cluster size the exhaustive search accepts.  The
#: state space grows as (stage cuts) × (device subsets per stage); five
#: devices keeps the full zoo sweep in seconds.
MAX_EXACT_DEVICES = 5


@dataclass(frozen=True)
class ExactStage:
    """One stage of the exact plan: segment + canonical device order."""

    start: int
    end: int
    devices: Tuple[Device, ...]
    cost: float


@dataclass(frozen=True)
class ExactPlan:
    """Branch-and-bound result plus search statistics.

    ``incumbent_period`` is the greedy (PICO) period under the same
    canonical realization; ``improved`` whether the search beat it.
    """

    stages: Tuple[ExactStage, ...]
    period: float
    latency: float
    incumbent_period: float
    nodes: int
    pruned: int

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    @property
    def improved(self) -> bool:
        return self.period < self.incumbent_period

    @property
    def gap(self) -> float:
        """Greedy optimality gap, ``incumbent / exact − 1`` (≥ 0)."""
        if self.period <= 0.0:
            return 0.0
        return self.incumbent_period / self.period - 1.0


def _canonical_order(
    indices: "FrozenSet[int]", devices: "Tuple[Device, ...]"
) -> "Tuple[int, ...]":
    """Stage device order: strongest first, cluster order on ties —
    Algorithm 2's assignment order inside one stage."""
    return tuple(sorted(indices, key=lambda i: (-devices[i].capacity, i)))


class _StageCosts:
    """Memoised canonical stage costs over ``(start, end, device set)``."""

    def __init__(
        self,
        model: Model,
        cluster: Cluster,
        network: NetworkModel,
        options: CostOptions,
    ) -> None:
        self.model = model
        self.devices = cluster.devices
        self.network = network
        self.segments = get_segment_table(model, options)
        self._memo: "Dict[Tuple[int, int, FrozenSet[int]], float]" = {}
        self.evals = 0

    def rows(self, end: int, ordered: "Sequence[int]") -> "List":
        """Canonical row split of the stage's output map."""
        _, h, _ = self.segments.out_shape(end)
        caps = [self.devices[i].capacity for i in ordered]
        if all(c == caps[0] for c in caps):
            # Equal capacities: Algorithm 1's equal split, so the
            # homogeneous search space matches the DP bit-for-bit
            # (weighted_partition may order remainder rows differently).
            return equal_partition(h, len(caps))
        return weighted_partition(h, caps)

    def cost(self, start: int, end: int, subset: "FrozenSet[int]") -> float:
        key = (start, end, subset)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        ordered = _canonical_order(subset, self.devices)
        assignments = [
            (self.devices[i], rows)
            for i, rows in zip(ordered, self.rows(end, ordered))
        ]
        total = self.segments.stage_total(
            start,
            end,
            assignments,
            self.network,
            with_head=end == self.model.n_units,
        )
        self._memo[key] = total
        self.evals += 1
        return total


def _nonempty_subsets(indices: "Tuple[int, ...]") -> "List[FrozenSet[int]]":
    out = []
    for mask in range(1, 1 << len(indices)):
        out.append(
            frozenset(i for b, i in enumerate(indices) if mask >> b & 1)
        )
    return out


def _greedy_incumbent(
    model: Model,
    cluster: Cluster,
    network: NetworkModel,
    options: CostOptions,
    costs: _StageCosts,
) -> "Tuple[ExactStage, ...]":
    """The PICO plan's stage segments + device sets, re-costed through
    the canonical realization (identical to the greedy plan whenever the
    stage capacities are pairwise distinct)."""
    from repro.schemes.pico import PicoScheme

    plan = PicoScheme().plan(model, cluster, network, options)
    index_of = {id(d): i for i, d in enumerate(cluster.devices)}
    stages = []
    for stage in plan.stages:
        subset = frozenset(index_of[id(d)] for d, _ in stage.assignments)
        ordered = _canonical_order(subset, cluster.devices)
        stages.append(
            ExactStage(
                stage.start,
                stage.end,
                tuple(cluster.devices[i] for i in ordered),
                costs.cost(stage.start, stage.end, subset),
            )
        )
    return tuple(stages)


def plan_exact(
    model: Model,
    cluster: Cluster,
    network: NetworkModel,
    options: CostOptions = DEFAULT_OPTIONS,
    period_bound: float = math.inf,
    max_devices: int = MAX_EXACT_DEVICES,
) -> ExactPlan:
    """Exhaustive minimum-period heterogeneous pipeline search.

    Minimises the Eq. (10) period (ties break towards lower latency,
    then fewer stages, like Algorithm 1).  Feasible for small clusters
    only; raises :class:`PlanningError` above ``max_devices`` devices.
    """
    n_dev = len(cluster)
    if n_dev > max_devices:
        raise PlanningError(
            f"exact search is exponential in devices: {n_dev} > "
            f"{max_devices} (raise max_devices to force it)"
        )
    n_units = model.n_units
    costs = _StageCosts(model, cluster, network, options)
    incumbent = _greedy_incumbent(model, cluster, network, options, costs)
    incumbent_period = max(s.cost for s in incumbent)
    incumbent_latency = sum(s.cost for s in incumbent)

    all_indices = tuple(range(n_dev))
    all_subsets = _nonempty_subsets(all_indices)
    subsets_of: "Dict[FrozenSet[int], List[FrozenSet[int]]]" = {}

    # Relaxed suffix bound: LB[u] = min over next cut e of
    # max(cheapest stage over [u, e) with *any* subset, LB[e]).
    lb = [0.0] * (n_units + 1)
    for u in range(n_units - 1, -1, -1):
        best = math.inf
        for e in range(u + 1, n_units + 1):
            stage_min = min(costs.cost(u, e, s) for s in all_subsets)
            candidate = stage_min if stage_min > lb[e] else lb[e]
            if candidate < best:
                best = candidate
        lb[u] = best

    best_key = (incumbent_period, incumbent_latency, len(incumbent))
    best_stages: "List[Tuple[int, int, FrozenSet[int]]]" = []
    found_better = False
    nodes = 0
    pruned = 0
    prefix: "List[Tuple[int, int, FrozenSet[int]]]" = []

    # Dominance memo: prefixes reaching the same (position, available
    # devices) state with pointwise-worse (period, latency, stages) can
    # never finish better — the continuation depends only on the state
    # and the final key is monotone in all three components.
    frontiers: "Dict[Tuple[int, FrozenSet[int]], List[Tuple[float, float, int]]]" = {}

    def threshold() -> float:
        return best_key[0] if best_key[0] < period_bound else period_bound

    def dfs(u: int, avail: "FrozenSet[int]", cur_max: float, cur_lat: float) -> None:
        nonlocal best_key, best_stages, found_better, nodes, pruned
        nodes += 1
        bound = cur_max if cur_max > lb[u] else lb[u]
        if bound > threshold():
            pruned += 1
            return
        state = (u, avail)
        mine = (cur_max, cur_lat, len(prefix))
        frontier = frontiers.setdefault(state, [])
        for seen in frontier:
            if seen[0] <= cur_max and seen[1] <= cur_lat and seen[2] <= mine[2]:
                pruned += 1
                return
        frontier[:] = [
            seen
            for seen in frontier
            if not (cur_max <= seen[0] and cur_lat <= seen[1] and mine[2] <= seen[2])
        ]
        frontier.append(mine)
        if u == n_units:
            key = (cur_max, cur_lat, len(prefix))
            if key < best_key:
                best_key = key
                best_stages = list(prefix)
                found_better = True
            return
        if not avail:
            pruned += 1
            return
        avail_tuple = tuple(sorted(avail))
        choices = subsets_of.get(avail)
        if choices is None:
            choices = _nonempty_subsets(avail_tuple)
            subsets_of[avail] = choices
        for e in range(u + 1, n_units + 1):
            for subset in choices:
                c = costs.cost(u, e, subset)
                new_max = cur_max if cur_max > c else c
                if new_max > threshold():
                    continue
                prefix.append((u, e, subset))
                dfs(e, avail - subset, new_max, cur_lat + c)
                prefix.pop()

    dfs(0, frozenset(all_indices), 0.0, 0.0)

    if found_better:
        stages = tuple(
            ExactStage(
                start,
                end,
                tuple(
                    cluster.devices[i]
                    for i in _canonical_order(subset, cluster.devices)
                ),
                costs.cost(start, end, subset),
            )
            for start, end, subset in best_stages
        )
    else:
        stages = incumbent
    return ExactPlan(
        stages,
        best_key[0],
        best_key[1],
        incumbent_period,
        nodes,
        pruned,
    )


def realize_exact(model: Model, plan: ExactPlan) -> PipelinePlan:
    """Lower an :class:`ExactPlan` to a runnable :class:`PipelinePlan`
    via the canonical realization — ``plan_cost`` of the result
    reproduces ``plan.period`` bit-for-bit."""
    stage_plans = []
    for stage in plan.stages:
        _, h, w = model.out_shape(stage.end - 1)
        caps = [d.capacity for d in stage.devices]
        if all(c == caps[0] for c in caps):
            rows = equal_partition(h, len(caps))
        else:
            rows = weighted_partition(h, caps)
        assignments = tuple(
            (device, Region.from_bounds(iv.start, iv.end, 0, w))
            for device, iv in zip(stage.devices, rows)
        )
        stage_plans.append(StagePlan(stage.start, stage.end, assignments))
    return PipelinePlan(model.name, tuple(stage_plans), mode="pipelined")


class ExactScheme(Scheme):
    """Scheme wrapper over :func:`plan_exact` (``--planner exact``)."""

    name = "EXACT"

    def __init__(
        self,
        period_bound: float = math.inf,
        max_devices: int = MAX_EXACT_DEVICES,
    ) -> None:
        self.period_bound = period_bound
        self.max_devices = max_devices

    def plan(
        self,
        model: Model,
        cluster: Cluster,
        network: NetworkModel,
        options: CostOptions = DEFAULT_OPTIONS,
    ) -> PipelinePlan:
        exact = plan_exact(
            model,
            cluster,
            network,
            options,
            period_bound=self.period_bound,
            max_devices=self.max_devices,
        )
        return realize_exact(model, exact)
