"""Plan serialisation: JSON round-trip for deployment artifacts.

A planned pipeline is the artefact a deployment controller ships to the
cluster (each device needs its segment bounds and output region before
weights flow).  Plans serialise to plain JSON-compatible dicts; devices
are embedded by value so a plan file is self-contained.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.cluster.device import Device
from repro.core.plan import PipelinePlan, StagePlan
from repro.partition.regions import Region

__all__ = ["plan_to_dict", "plan_from_dict", "dump_plan", "load_plan"]

_FORMAT_VERSION = 1


def _region_to_dict(region: Region) -> "Dict[str, int]":
    return {
        "row_start": region.rows.start,
        "row_end": region.rows.end,
        "col_start": region.cols.start,
        "col_end": region.cols.end,
    }


def _region_from_dict(data: "Dict[str, int]") -> Region:
    return Region.from_bounds(
        data["row_start"], data["row_end"], data["col_start"], data["col_end"]
    )


def _device_to_dict(device: Device) -> "Dict[str, Any]":
    return {"name": device.name, "capacity": device.capacity, "alpha": device.alpha}


def _device_from_dict(data: "Dict[str, Any]") -> Device:
    return Device(data["name"], data["capacity"], data.get("alpha", 1.0))


def plan_to_dict(plan: PipelinePlan) -> "Dict[str, Any]":
    """Serialise a plan to a JSON-compatible dict."""
    return {
        "format_version": _FORMAT_VERSION,
        "model": plan.model_name,
        "mode": plan.mode,
        "stages": [
            {
                "start": stage.start,
                "end": stage.end,
                "assignments": [
                    {
                        "device": _device_to_dict(device),
                        "out_region": _region_to_dict(region),
                    }
                    for device, region in stage.assignments
                ],
                **(
                    {"channel_groups": [list(g) for g in stage.channel_groups]}
                    if stage.channel_groups is not None
                    else {}
                ),
            }
            for stage in plan.stages
        ],
    }


def plan_from_dict(data: "Dict[str, Any]") -> PipelinePlan:
    """Reconstruct a plan from :func:`plan_to_dict` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported plan format version {version!r}")
    stages = tuple(
        StagePlan(
            stage["start"],
            stage["end"],
            tuple(
                (
                    _device_from_dict(a["device"]),
                    _region_from_dict(a["out_region"]),
                )
                for a in stage["assignments"]
            ),
            channel_groups=(
                tuple(tuple(g) for g in stage["channel_groups"])
                if stage.get("channel_groups") is not None
                else None
            ),
        )
        for stage in data["stages"]
    )
    return PipelinePlan(data["model"], stages, mode=data["mode"])


def dump_plan(plan: PipelinePlan, path: str) -> None:
    """Write a plan to a JSON file."""
    with open(path, "w") as handle:
        json.dump(plan_to_dict(plan), handle, indent=2, sort_keys=True)


def load_plan(path: str) -> PipelinePlan:
    """Read a plan from a JSON file."""
    with open(path) as handle:
        return plan_from_dict(json.load(handle))
