"""Pareto-frontier DP — an ablation extension of Algorithm 1.

Algorithm 1 keeps one (period, latency) entry per DP state and prunes
greedily, which can discard a higher-period / lower-latency sub-plan
that the latency budget later needs.  This variant keeps the full
non-dominated frontier per state, making it *exact* for the
homogeneous, equal-strip, contiguous-segment problem that Algorithm 1
approximates.  The ablation benchmark quantifies how often (and by how
much) the frontier beats the paper's heuristic under tight ``t_lim``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.device import Cluster
from repro.core.dp_planner import HomoPlan, HomoStage
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.cost.tables import get_cost_table
from repro.models.graph import Model

__all__ = ["plan_pareto"]


@dataclass(frozen=True)
class _Entry:
    period: float
    latency: float
    back: Optional[Tuple[int, int, HomoStage]]  # (prev_j, prev_p, stage)


def _insert(frontier: "List[_Entry]", entry: _Entry) -> None:
    """Keep ``frontier`` minimal: drop dominated entries."""
    for existing in frontier:
        if existing.period <= entry.period and existing.latency <= entry.latency:
            return
    frontier[:] = [
        e for e in frontier
        if not (entry.period <= e.period and entry.latency <= e.latency)
    ]
    frontier.append(entry)


def plan_pareto(
    model: Model,
    cluster: Cluster,
    network: NetworkModel,
    options: CostOptions = DEFAULT_OPTIONS,
    t_lim: float = math.inf,
    table=None,
) -> Optional[HomoPlan]:
    """Exact minimum-period plan under a latency budget (homogenised
    cluster, equal strips, contiguous segments).

    ``Ts`` values come from the shared vectorized cost table, so
    repeated calls — e.g. a ``t_lim`` sweep over the same deployment —
    reuse every memoised stage cost; pass ``table`` to supply a
    caller-managed one (any :class:`~repro.core.dp_planner.StageTimeTable`
    compatible object)."""
    homo = cluster.homogenized()
    device = homo.devices[0]
    n_devices = len(homo)
    n_units = model.n_units
    ts = (
        table
        if table is not None
        else get_cost_table(model, device, network, options)
    )

    frontiers: "Dict[Tuple[int, int], List[_Entry]]" = {}
    for j in range(1, n_units + 1):
        for p in range(1, n_devices + 1):
            frontier: "List[_Entry]" = []
            single = ts(0, j, p)
            if single <= t_lim:
                _insert(frontier, _Entry(single, single, None))
            for s in range(1, j):
                for p_tail in range(1, p):
                    tail = ts(s, j, p_tail)
                    if tail > t_lim:
                        continue
                    for prev in frontiers.get((s, p - p_tail), ()):
                        latency = prev.latency + tail
                        if latency > t_lim:
                            continue
                        _insert(
                            frontier,
                            _Entry(
                                max(prev.period, tail),
                                latency,
                                (s, p - p_tail, HomoStage(s, j, p_tail)),
                            ),
                        )
            frontiers[(j, p)] = frontier

    best: Optional[_Entry] = None
    best_p = 0
    for p in range(1, n_devices + 1):
        for entry in frontiers.get((n_units, p), ()):
            if best is None or (entry.period, entry.latency) < (
                best.period,
                best.latency,
            ):
                best = entry
                best_p = p
    if best is None:
        return None

    stages: "List[HomoStage]" = []
    j, p, entry = n_units, best_p, best
    while entry.back is not None:
        prev_j, prev_p, stage = entry.back
        stages.append(stage)
        # Find the frontier entry we came from: match period/latency.
        target_latency = entry.latency - ts(stage.start, stage.end, stage.n_devices)
        candidates = [
            e for e in frontiers[(prev_j, prev_p)]
            if abs(e.latency - target_latency) < 1e-12 and e.period <= entry.period
        ]
        assert candidates, "broken back-pointer chain"
        entry = candidates[0]
        j, p = prev_j, prev_p
    stages.append(HomoStage(0, j, p))
    stages.reverse()
    return HomoPlan(tuple(stages), best.period, best.latency)
