"""PICO's planning core: DP planner, heterogeneous adaptation, optimal search."""

from repro.core.bfs import BFSResult, bfs_optimal
from repro.core.dp_planner import (
    HomoPlan,
    HomoStage,
    StageTimeTable,
    plan_homogeneous,
    plan_homogeneous_reference,
)
from repro.core.heterogeneous import adapt_to_cluster
from repro.core.pareto import plan_pareto
from repro.core.plan import PipelinePlan, PlanCost, StagePlan, plan_cost
from repro.core.serialize import dump_plan, load_plan, plan_from_dict, plan_to_dict

__all__ = [
    "BFSResult",
    "HomoPlan",
    "HomoStage",
    "PipelinePlan",
    "PlanCost",
    "StagePlan",
    "StageTimeTable",
    "adapt_to_cluster",
    "bfs_optimal",
    "dump_plan",
    "load_plan",
    "plan_cost",
    "plan_from_dict",
    "plan_to_dict",
    "plan_homogeneous",
    "plan_homogeneous_reference",
    "plan_pareto",
]
