"""Algorithm 1: dynamic programming over the homogenised cluster.

The paper memoises ``P[i][j][p]`` — the minimum pipeline period for
layers ``i..j`` on ``p`` averaged devices — but every recursive call
anchors ``i`` at the first layer, so the state space is really the
prefix DP

    P[j][p] = min over split s < j, p' < p of
              max( P[s][p - p'],  Ts(s, j, p') )

with ``Ts(s, j, p')`` the Eq. (9) cost of a single stage running units
``[s, j)`` on ``p'`` equal-capacity devices with an equal strip
partition.  Solutions whose accumulated pipeline latency exceeds
``t_lim`` are pruned, as in the paper's Algorithm 1 (lines 11–16).

The returned :class:`HomoPlan` is abstract (device *counts*, not
devices); Algorithm 2 (:mod:`repro.core.heterogeneous`) maps it onto
the real cluster.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.device import Cluster, Device
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.cost.stage_cost import branch_stage_time, homogeneous_stage_time
from repro.partition.branches import assign_paths_lpt, is_branchable, path_flops
from repro.models.graph import Model

__all__ = ["HomoStage", "HomoPlan", "StageTimeTable", "plan_homogeneous"]


@dataclass(frozen=True)
class HomoStage:
    """An abstract stage: unit segment + device count.

    ``branch`` marks a branch-parallel stage over one concat block (the
    intra-block partition extension); Algorithm 2 then assigns whole
    block paths to devices instead of spatial strips."""

    start: int
    end: int
    n_devices: int
    branch: bool = False


@dataclass(frozen=True)
class HomoPlan:
    """Algorithm 1 output for the homogenised cluster."""

    stages: Tuple[HomoStage, ...]
    period: float
    latency: float

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    @property
    def devices_used(self) -> int:
        return sum(s.n_devices for s in self.stages)


class StageTimeTable:
    """Memoised ``Ts(start, end, p)`` single-stage costs (Eq. 9).

    With ``allow_branch=True`` a single-unit segment over a concat
    block also considers the branch-parallel layout (paths assigned to
    devices by LPT) and keeps whichever is faster — the intra-block
    partition the paper leaves as future work."""

    def __init__(
        self,
        model: Model,
        device: Device,
        network: NetworkModel,
        options: CostOptions = DEFAULT_OPTIONS,
        allow_branch: bool = False,
    ) -> None:
        self.model = model
        self.device = device
        self.network = network
        self.options = options
        self.allow_branch = allow_branch
        self._cache: "Dict[Tuple[int, int, int], Tuple[float, bool]]" = {}

    def best(self, start: int, end: int, p: int) -> "Tuple[float, bool]":
        """(cost, is_branch) of the cheapest layout for this stage."""
        key = (start, end, p)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        strip_cost = homogeneous_stage_time(
            self.model,
            start,
            end,
            p,
            self.device,
            self.network,
            self.options,
            with_head=end == self.model.n_units,
        ).total
        result = (strip_cost, False)
        if (
            self.allow_branch
            and end == start + 1
            and p >= 2
            and is_branchable(self.model.units[start])
        ):
            weights = path_flops(self.model, start, self.options)
            groups = assign_paths_lpt(weights, [self.device.capacity] * p)
            branch_cost = branch_stage_time(
                self.model,
                start,
                tuple((self.device, g) for g in groups),
                self.network,
                self.options,
                with_head=end == self.model.n_units,
            ).total
            if branch_cost < strip_cost:
                result = (branch_cost, True)
        self._cache[key] = result
        return result

    def __call__(self, start: int, end: int, p: int) -> float:
        return self.best(start, end, p)[0]

    def is_branch(self, start: int, end: int, p: int) -> bool:
        return self.best(start, end, p)[1]


def plan_homogeneous(
    model: Model,
    cluster: Cluster,
    network: NetworkModel,
    options: CostOptions = DEFAULT_OPTIONS,
    t_lim: float = math.inf,
    allow_branch: bool = False,
) -> Optional[HomoPlan]:
    """Run Algorithm 1 on the homogenised cluster (Eq. 12).

    Returns the minimum-period plan whose pipeline latency stays within
    ``t_lim``, or ``None`` when even the single-stage plan violates the
    bound.  Ties in period break towards lower latency, then fewer
    stages (less inter-stage traffic for equal analytic cost).
    """
    homo = cluster.homogenized()
    device = homo.devices[0]
    n_devices = len(homo)
    ts = StageTimeTable(model, device, network, options, allow_branch)
    n_units = model.n_units

    # best[j][p]: (period, latency, back-pointer) for units [0, j) on p
    # devices; back-pointer is (prev_j, prev_p, stage) or None for a
    # single-stage solution.
    Entry = Tuple[float, float, Optional[Tuple[int, int, HomoStage]]]
    best: "Dict[Tuple[int, int], Optional[Entry]]" = {}

    for j in range(1, n_units + 1):
        for p in range(1, n_devices + 1):
            single = ts(0, j, p)
            candidate: "Optional[Entry]" = (
                (single, single, None) if single <= t_lim else None
            )
            for s in range(1, j):
                for p_tail in range(1, p):
                    prev = best.get((s, p - p_tail))
                    if prev is None:
                        continue
                    tail = ts(s, j, p_tail)
                    latency = prev[1] + tail
                    if latency > t_lim:
                        continue
                    period = max(prev[0], tail)
                    entry: Entry = (
                        period,
                        latency,
                        (s, p - p_tail, HomoStage(s, j, p_tail, ts.is_branch(s, j, p_tail))),
                    )
                    if candidate is None or (period, latency) < candidate[:2]:
                        candidate = entry
            best[(j, p)] = candidate

    # A plan may leave devices idle: take the best over p <= n_devices.
    final: Optional[Entry] = None
    final_p = 0
    for p in range(1, n_devices + 1):
        entry = best.get((n_units, p))
        if entry is None:
            continue
        if final is None or entry[:2] < final[:2]:
            final = entry
            final_p = p
    if final is None:
        return None

    stages: "List[HomoStage]" = []
    j, p, entry = n_units, final_p, final
    while entry[2] is not None:
        prev_j, prev_p, stage = entry[2]
        stages.append(stage)
        j, p = prev_j, prev_p
        entry = best[(j, p)]  # type: ignore[assignment]
        assert entry is not None
    stages.append(HomoStage(0, j, p, ts.is_branch(0, j, p)))
    stages.reverse()
    return HomoPlan(tuple(stages), final[0], final[1])
