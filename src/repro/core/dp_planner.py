"""Algorithm 1: dynamic programming over the homogenised cluster.

The paper memoises ``P[i][j][p]`` — the minimum pipeline period for
layers ``i..j`` on ``p`` averaged devices — but every recursive call
anchors ``i`` at the first layer, so the state space is really the
prefix DP

    P[j][p] = min over split s < j, p' < p of
              max( P[s][p - p'],  Ts(s, j, p') )

with ``Ts(s, j, p')`` the Eq. (9) cost of a single stage running units
``[s, j)`` on ``p'`` equal-capacity devices with an equal strip
partition.  Solutions whose accumulated pipeline latency exceeds
``t_lim`` are pruned, as in the paper's Algorithm 1 (lines 11–16).

Two implementations share the DP core:

* :func:`plan_homogeneous` — the production planner.  ``Ts`` comes from
  the vectorized :class:`~repro.cost.tables.SegmentCostTable` (shared
  across calls through a registry), and dominated split points are
  skipped: a split whose cheapest possible tail stage already exceeds
  the incumbent period cannot improve the state, so its whole device
  sub-loop is pruned.  Pruning only discards transitions that are
  strictly worse in period, so the result is identical to the
  unpruned DP.
* :func:`plan_homogeneous_reference` — the per-query scalar baseline
  (the exactness oracle and benchmark reference), backed by
  :class:`StageTimeTable`.

The returned :class:`HomoPlan` is abstract (device *counts*, not
devices); Algorithm 2 (:mod:`repro.core.heterogeneous`) maps it onto
the real cluster.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.device import Cluster, Device
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.cost.stage_cost import branch_stage_time, homogeneous_stage_time
from repro.cost.tables import get_cost_table
from repro.partition.branches import assign_paths_lpt, is_branchable, path_flops
from repro.models.graph import Model

__all__ = [
    "HomoStage",
    "HomoPlan",
    "StageTimeTable",
    "plan_homogeneous",
    "plan_homogeneous_reference",
]


@dataclass(frozen=True)
class HomoStage:
    """An abstract stage: unit segment + device count.

    ``branch`` marks a branch-parallel stage over one concat block (the
    intra-block partition extension); Algorithm 2 then assigns whole
    block paths to devices instead of spatial strips."""

    start: int
    end: int
    n_devices: int
    branch: bool = False


@dataclass(frozen=True)
class HomoPlan:
    """Algorithm 1 output for the homogenised cluster."""

    stages: Tuple[HomoStage, ...]
    period: float
    latency: float

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    @property
    def devices_used(self) -> int:
        return sum(s.n_devices for s in self.stages)


class StageTimeTable:
    """Memoised ``Ts(start, end, p)`` single-stage costs (Eq. 9).

    The *reference* implementation: every cache miss re-walks the
    segment through the scalar cost model.  Kept as the exactness
    oracle for the vectorized
    :class:`~repro.cost.tables.SegmentCostTable`, which must agree
    bit-for-bit (``tests/test_cost_tables.py``).

    With ``allow_branch=True`` a single-unit segment over a concat
    block also considers the branch-parallel layout (paths assigned to
    devices by LPT) and keeps whichever is faster — the intra-block
    partition the paper leaves as future work."""

    def __init__(
        self,
        model: Model,
        device: Device,
        network: NetworkModel,
        options: CostOptions = DEFAULT_OPTIONS,
        allow_branch: bool = False,
    ) -> None:
        self.model = model
        self.device = device
        self.network = network
        self.options = options
        self.allow_branch = allow_branch
        self._cache: "Dict[Tuple[int, int, int], Tuple[float, bool]]" = {}

    def best(self, start: int, end: int, p: int) -> "Tuple[float, bool]":
        """(cost, is_branch) of the cheapest layout for this stage."""
        key = (start, end, p)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        strip_cost = homogeneous_stage_time(
            self.model,
            start,
            end,
            p,
            self.device,
            self.network,
            self.options,
            with_head=end == self.model.n_units,
        ).total
        result = (strip_cost, False)
        if (
            self.allow_branch
            and end == start + 1
            and p >= 2
            and is_branchable(self.model.units[start])
        ):
            weights = path_flops(self.model, start, self.options)
            groups = assign_paths_lpt(weights, [self.device.capacity] * p)
            branch_cost = branch_stage_time(
                self.model,
                start,
                tuple((self.device, g) for g in groups),
                self.network,
                self.options,
                with_head=end == self.model.n_units,
            ).total
            if branch_cost < strip_cost:
                result = (branch_cost, True)
        self._cache[key] = result
        return result

    def __call__(self, start: int, end: int, p: int) -> float:
        return self.best(start, end, p)[0]

    def is_branch(self, start: int, end: int, p: int) -> bool:
        return self.best(start, end, p)[1]


# A DP entry: (period, latency, n_stages, back-pointer); the back-pointer
# is (prev_j, prev_p, stage) or None for a single-stage solution.
_Entry = Tuple[float, float, int, Optional[Tuple[int, int, HomoStage]]]


def _min_period_dp(
    model: Model,
    n_devices: int,
    ts,
    t_lim: float,
    prune: bool,
) -> Optional[HomoPlan]:
    """The Algorithm 1 DP over any ``Ts`` provider.

    Entries order lexicographically by (period, latency, n_stages) —
    ties in (period, latency) break towards fewer stages, which means
    less inter-stage traffic for equal analytic cost.  With ``prune``
    on, split points whose cheapest possible tail stage already exceeds
    the incumbent period are skipped (their period would be strictly
    worse, so they can never be selected); results are identical with
    pruning on or off.
    """
    n_units = model.n_units
    min_upto = getattr(ts, "min_cost_upto", None) if prune else None
    best: "Dict[Tuple[int, int], Optional[_Entry]]" = {}

    for j in range(1, n_units + 1):
        for p in range(1, n_devices + 1):
            single = ts(0, j, p)
            candidate: "Optional[_Entry]" = (
                (single, single, 1, None) if single <= t_lim else None
            )
            for s in range(1, j):
                if (
                    min_upto is not None
                    and candidate is not None
                    and p > 1
                    and min_upto(s, j, p - 1) > candidate[0]
                ):
                    continue  # every tail stage from s exceeds the incumbent period
                for p_tail in range(1, p):
                    prev = best.get((s, p - p_tail))
                    if prev is None:
                        continue
                    tail = ts(s, j, p_tail)
                    if prune and candidate is not None and tail > candidate[0]:
                        continue
                    latency = prev[1] + tail
                    if latency > t_lim:
                        continue
                    period = prev[0] if prev[0] >= tail else tail
                    key = (period, latency, prev[2] + 1)
                    if candidate is None or key < candidate[:3]:
                        candidate = key + (
                            (
                                s,
                                p - p_tail,
                                HomoStage(
                                    s, j, p_tail, ts.is_branch(s, j, p_tail)
                                ),
                            ),
                        )
            best[(j, p)] = candidate

    # A plan may leave devices idle: take the best over p <= n_devices.
    final: Optional[_Entry] = None
    final_p = 0
    for p in range(1, n_devices + 1):
        entry = best.get((n_units, p))
        if entry is None:
            continue
        if final is None or entry[:3] < final[:3]:
            final = entry
            final_p = p
    if final is None:
        return None

    stages: "List[HomoStage]" = []
    j, p, entry = n_units, final_p, final
    while entry[3] is not None:
        prev_j, prev_p, stage = entry[3]
        stages.append(stage)
        j, p = prev_j, prev_p
        entry = best[(j, p)]  # type: ignore[assignment]
        assert entry is not None
    stages.append(HomoStage(0, j, p, ts.is_branch(0, j, p)))
    stages.reverse()
    return HomoPlan(tuple(stages), final[0], final[1])


def plan_homogeneous(
    model: Model,
    cluster: Cluster,
    network: NetworkModel,
    options: CostOptions = DEFAULT_OPTIONS,
    t_lim: float = math.inf,
    allow_branch: bool = False,
    table=None,
) -> Optional[HomoPlan]:
    """Run Algorithm 1 on the homogenised cluster (Eq. 12).

    Returns the minimum-period plan whose pipeline latency stays within
    ``t_lim``, or ``None`` when even the single-stage plan violates the
    bound.  Ties in period break towards lower latency, then fewer
    stages (less inter-stage traffic for equal analytic cost).

    ``Ts`` comes from the shared vectorized cost table for ``(model,
    homogenised device, network, options)``; pass ``table`` (any object
    with the :class:`StageTimeTable` protocol) to reuse a caller-managed
    table across invocations, e.g. during online re-planning.
    """
    homo = cluster.homogenized()
    device = homo.devices[0]
    if table is None:
        table = get_cost_table(model, device, network, options, allow_branch)
    return _min_period_dp(model, len(homo), table, t_lim, prune=True)


def plan_homogeneous_reference(
    model: Model,
    cluster: Cluster,
    network: NetworkModel,
    options: CostOptions = DEFAULT_OPTIONS,
    t_lim: float = math.inf,
    allow_branch: bool = False,
) -> Optional[HomoPlan]:
    """Algorithm 1 with the per-query scalar cost model (the seed
    implementation) — the benchmark baseline and exactness oracle for
    :func:`plan_homogeneous`.  Must return identical plans."""
    homo = cluster.homogenized()
    ts = StageTimeTable(model, homo.devices[0], network, options, allow_branch)
    return _min_period_dp(model, len(homo), ts, t_lim, prune=False)
