"""Algorithm 2: adapt the homogeneous plan to the real cluster.

Keeps every stage's model segment fixed and re-assigns real devices:
devices are visited strongest-first, each joining the open stage with
the highest remaining average computing requirement ``Θ' / |D'|``
(the paper's prose; its pseudocode prints "minimum", an evident typo —
assigning the strongest devices to the *lightest* stages would invert
the load balance the text describes).  Once a stage's slots fill, its
final output map is split with the capacity-weighted divide-and-conquer
partition, so each device's strip is proportional to its speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cluster.device import Cluster
from repro.core.dp_planner import HomoPlan
from repro.core.plan import PipelinePlan, StagePlan
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS, segment_flops
from repro.models.graph import Model
from repro.partition.regions import Region
from repro.partition.strips import equal_partition, strip_regions, weighted_partition

__all__ = ["adapt_to_cluster"]


@dataclass
class _OpenStage:
    start: int
    end: int
    slots: int  # devices still to assign
    requirement: float  # Θ' of the homogeneous stage
    devices: "List"

    @property
    def avg_requirement(self) -> float:
        return self.requirement / self.slots if self.slots > 0 else float("-inf")


def _stage_requirement(
    model: Model, start: int, end: int, n_devices: int, options: CostOptions
) -> float:
    """Θ'_{i→j} (Eq. 14): total FLOPs over the homogeneous stage's equal
    partition, halo included."""
    _, h, w = model.out_shape(end - 1)
    total = 0.0
    for region in strip_regions(h, w, equal_partition(h, n_devices)):
        if not region.empty:
            total += segment_flops(model, start, end, region, options)
    return total


def adapt_to_cluster(
    model: Model,
    homo_plan: HomoPlan,
    cluster: Cluster,
    options: CostOptions = DEFAULT_OPTIONS,
) -> PipelinePlan:
    """Map a :class:`HomoPlan` onto heterogeneous devices (Algorithm 2)."""
    if homo_plan.devices_used > len(cluster):
        raise ValueError(
            f"plan uses {homo_plan.devices_used} devices, cluster has {len(cluster)}"
        )
    open_stages = [
        _OpenStage(
            s.start,
            s.end,
            s.n_devices,
            _stage_requirement(model, s.start, s.end, s.n_devices, options),
            [],
        )
        for s in homo_plan.stages
    ]
    # Strongest devices first; only as many as the plan needs (Algorithm 1
    # may intentionally idle devices whose marginal gain is negative).
    for device in cluster.sorted_by_capacity()[: homo_plan.devices_used]:
        target = max(
            (stage for stage in open_stages if stage.slots > 0),
            key=lambda stage: stage.avg_requirement,
        )
        target.devices.append(device)
        target.slots -= 1

    stage_plans = []
    for stage, homo_stage in zip(open_stages, homo_plan.stages):
        assert stage.slots == 0 and stage.devices
        _, h, w = model.out_shape(stage.end - 1)
        if homo_stage.branch:
            # Branch-parallel stage: whole block paths per device (LPT
            # weighted by capacity); every device spans the full map.
            from repro.partition.branches import assign_paths_lpt, path_flops

            weights = path_flops(model, stage.start, options)
            groups = assign_paths_lpt(
                weights, [d.capacity for d in stage.devices]
            )
            assignments = tuple(
                (device, Region.full(h, w)) for device in stage.devices
            )
            stage_plans.append(
                StagePlan(stage.start, stage.end, assignments, path_groups=groups)
            )
            continue
        weights = [d.capacity for d in stage.devices]
        rows = weighted_partition(h, weights)
        assignments = tuple(
            (device, Region.from_bounds(iv.start, iv.end, 0, w))
            for device, iv in zip(stage.devices, rows)
        )
        stage_plans.append(StagePlan(stage.start, stage.end, assignments))
    return PipelinePlan(model.name, tuple(stage_plans), mode="pipelined")
