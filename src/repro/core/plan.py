"""Execution plans: stages, pipelines and their costs.

A :class:`PipelinePlan` is the planner output the rest of the system
consumes — the simulator replays it, the multiprocess runtime executes
it, the metrics module scores it.  Two modes exist:

* ``pipelined`` — stages run concurrently on disjoint device subsets;
  throughput is ``1 / period`` (PICO).
* ``exclusive`` — the whole cluster serves one task at a time through
  the phase sequence; period equals latency (layer-wise and fused-layer
  baselines, the paper's "one-stage schemes").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.device import Device
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.cost.stage_cost import StageCost, stage_time
from repro.models.graph import Model
from repro.partition.regions import Region

__all__ = ["StagePlan", "PipelinePlan", "PlanCost", "plan_cost"]

Assignment = Tuple[Device, Region]


@dataclass(frozen=True)
class StagePlan:
    """One stage: unit segment ``[start, end)`` plus device/region
    assignments over the segment's final output map.

    ``path_groups`` switches the stage to *branch-parallel* mode (the
    paper's future-work intra-block partition, implemented for concat
    blocks): entry ``i`` lists the block paths device ``i`` executes
    over the full spatial map, and each assignment's region is the full
    output map.  Branch stages must cover exactly one (block) unit.

    ``channel_groups`` switches the stage to *channel-parallel* mode
    (Interleaved Operator Partitioning, arXiv:2409.07693): entry ``i``
    is the half-open output-channel interval ``[lo, hi)`` device ``i``
    produces over the full spatial map.  Like branch stages, channel
    stages cover exactly one unit and each assignment's region is the
    full output map; an empty interval (``lo == hi``) idles the device.
    """

    start: int
    end: int
    assignments: Tuple[Assignment, ...]
    path_groups: Optional[Tuple[Tuple[int, ...], ...]] = None
    channel_groups: Optional[Tuple[Tuple[int, int], ...]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "assignments", tuple(self.assignments))
        if self.end <= self.start:
            raise ValueError(f"empty stage segment [{self.start}, {self.end})")
        if not self.assignments:
            raise ValueError("stage needs at least one device")
        if self.path_groups is not None and self.channel_groups is not None:
            raise ValueError(
                "a stage is branch-parallel or channel-parallel, not both"
            )
        if self.channel_groups is not None:
            object.__setattr__(
                self,
                "channel_groups",
                tuple((int(lo), int(hi)) for lo, hi in self.channel_groups),
            )
            if self.end != self.start + 1:
                raise ValueError("channel-parallel stages cover exactly one unit")
            if len(self.channel_groups) != len(self.assignments):
                raise ValueError(
                    "channel_groups must align one-to-one with assignments"
                )
            spans = []
            for lo, hi in self.channel_groups:
                if lo < 0 or hi < lo:
                    raise ValueError(f"bad channel interval [{lo}, {hi})")
                if hi > lo:
                    spans.append((lo, hi))
            spans.sort()
            for (_, prev_hi), (lo, _) in zip(spans, spans[1:]):
                if lo < prev_hi:
                    raise ValueError(
                        "channel intervals must be pairwise disjoint"
                    )
        if self.path_groups is not None:
            object.__setattr__(
                self, "path_groups", tuple(tuple(g) for g in self.path_groups)
            )
            if self.end != self.start + 1:
                raise ValueError("branch-parallel stages cover exactly one unit")
            if len(self.path_groups) != len(self.assignments):
                raise ValueError(
                    "path_groups must align one-to-one with assignments"
                )
            indices = [i for group in self.path_groups for i in group]
            if len(indices) != len(set(indices)):
                raise ValueError("a path may be assigned to only one device")

    @property
    def devices(self) -> Tuple[Device, ...]:
        return tuple(device for device, _ in self.assignments)

    @property
    def n_units(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class PipelinePlan:
    """A complete plan: contiguous stages covering every model unit."""

    model_name: str
    stages: Tuple[StagePlan, ...]
    mode: str = "pipelined"  # "pipelined" | "exclusive"

    def __post_init__(self) -> None:
        object.__setattr__(self, "stages", tuple(self.stages))
        if not self.stages:
            raise ValueError("plan needs at least one stage")
        if self.mode not in ("pipelined", "exclusive"):
            raise ValueError(f"unknown plan mode {self.mode!r}")
        if self.stages[0].start != 0:
            raise ValueError("first stage must start at unit 0")
        for prev, cur in zip(self.stages, self.stages[1:]):
            if cur.start != prev.end:
                raise ValueError(
                    f"stage gap: [{prev.start},{prev.end}) then [{cur.start},{cur.end})"
                )
        if self.mode == "pipelined":
            seen: "Dict[str, int]" = {}
            for idx, stage in enumerate(self.stages):
                for device in stage.devices:
                    if device.name in seen and seen[device.name] != idx:
                        raise ValueError(
                            f"device {device.name} assigned to two pipelined stages"
                        )
                    seen[device.name] = idx

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    @property
    def all_devices(self) -> Tuple[Device, ...]:
        devices: "List[Device]" = []
        seen = set()
        for stage in self.stages:
            for device in stage.devices:
                if device.name not in seen:
                    seen.add(device.name)
                    devices.append(device)
        return tuple(devices)

    def describe(self) -> str:
        lines = [f"{self.model_name} plan ({self.mode}, {self.n_stages} stages)"]
        for i, stage in enumerate(self.stages):
            names = ", ".join(d.name for d in stage.devices)
            kind = ""
            if stage.path_groups is not None:
                groups = "/".join(
                    ",".join(str(p) for p in g) or "-" for g in stage.path_groups
                )
                kind = f" [branch-parallel: paths {groups}]"
            elif stage.channel_groups is not None:
                groups = "/".join(
                    f"{lo}:{hi}" if hi > lo else "-"
                    for lo, hi in stage.channel_groups
                )
                kind = f" [channel-parallel: channels {groups}]"
            lines.append(
                f"  stage {i}: units [{stage.start}, {stage.end}) on "
                f"{len(stage.assignments)} device(s): {names}{kind}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class PlanCost:
    """Analytic timing of a plan (paper Eq. 9–11)."""

    stage_costs: Tuple[StageCost, ...]
    period: float  # Eq. 10 — pipelined: max stage; exclusive: total
    latency: float  # Eq. 11 — sum of stage costs

    @property
    def throughput(self) -> float:
        """Steady-state tasks per second."""
        return 1.0 / self.period if self.period > 0 else float("inf")


def plan_cost(
    model: Model,
    plan: PipelinePlan,
    network: NetworkModel,
    options: CostOptions = DEFAULT_OPTIONS,
) -> PlanCost:
    """Evaluate a plan with the analytic cost model."""
    if plan.stages[-1].end != model.n_units:
        raise ValueError(
            f"plan covers units up to {plan.stages[-1].end}, model has "
            f"{model.n_units}"
        )
    costs = []
    for stage in plan.stages:
        with_head = stage.end == model.n_units
        if stage.path_groups is not None:
            from repro.cost.stage_cost import branch_stage_time

            costs.append(
                branch_stage_time(
                    model,
                    stage.start,
                    tuple(
                        (device, group)
                        for (device, _), group in zip(
                            stage.assignments, stage.path_groups
                        )
                    ),
                    network,
                    options,
                    with_head=with_head,
                )
            )
            continue
        if stage.channel_groups is not None:
            from repro.cost.stage_cost import channel_stage_time

            costs.append(
                channel_stage_time(
                    model,
                    stage.start,
                    tuple(
                        (device, interval)
                        for (device, _), interval in zip(
                            stage.assignments, stage.channel_groups
                        )
                    ),
                    network,
                    options,
                    with_head=with_head,
                )
            )
            continue
        costs.append(
            stage_time(
                model,
                stage.start,
                stage.end,
                stage.assignments,
                network,
                options,
                with_head=with_head,
            )
        )
    latency = sum(c.total for c in costs)
    if plan.mode == "pipelined":
        period = max(c.total for c in costs)
        if options.shared_medium:
            # One WLAN: every stage's scatter/gather shares the medium,
            # so each period must carry the *total* communication.
            period = max(period, sum(c.t_comm for c in costs))
    else:
        period = latency
    return PlanCost(tuple(costs), period, latency)
