"""Pipelined frame serving with admission control and backpressure.

:class:`PipelineServer` is the serving layer on top of the runtime
core: it admits frames from an arrival process into a bounded queue and
keeps multiple frames in flight across the pipeline stages — one frame
per stage slot — so steady-state throughput approaches ``1/period``
instead of the frame-at-a-time ``1/latency``.  A full queue triggers
*backpressure* (``policy="block"``: admission waits for a slot) or
*load shedding* (``policy="shed"``: the frame is rejected and reported).
Both policies additionally consult
:meth:`~repro.runtime.core.Transport.backpressure` on the threaded
path — a transport whose internal buffering is saturated (a full
shared-memory slot ring) sheds at admission under ``"shed"`` and
delays admission under ``"block"``, instead of queueing a frame that
would stall a stage on the send.

Two execution strategies, selected by the transport's clock:

* **wall-clock transports** (:class:`~repro.runtime.core.InProcTransport`,
  the TCP backend) get one worker thread per stage with single-slot
  hand-off queues between stages — the frames genuinely overlap, like
  the TCP coordinator's stage runners, but over any transport.
* **virtual-clock transports** (:class:`~repro.runtime.core.SimTransport`)
  are driven serially in arrival order; the transport's per-stage
  ``stage_free`` recurrence ``C(n, s) = max(C(n, s-1), C(n-1, s)) + d_s``
  stamps exactly the timestamps an interleaved execution would produce,
  and admission decisions replay the same bounded queue analytically —
  frame ``i``'s fate depends only on earlier frames, which FIFO service
  has already fixed.

With ``max_batch > 1`` both paths additionally *micro-batch*: frames
queued at the pipeline entrance coalesce into a ``(C, B, H, W)``
cross-frame batch (up to ``max_batch``, holding the window open
``batch_timeout`` seconds for stragglers) that traverses every stage
as one unit via :func:`~repro.runtime.core.execute_stage_batch` — one
batched kernel pass per stage, amortising per-frame dispatch and
panel-packing overhead.  Batched outputs are bit-identical to the
per-frame loop, and the virtual server replays the same formation
policy analytically.

Both paths run the shared :func:`~repro.runtime.core.execute_stage`
split/compute/stitch, so served outputs stay bit-identical to
frame-at-a-time runs, and the PR-4 fault ladder (retry → repartition →
replan → degrade) applies per stage with frames in flight.  Every
admitted frame ends in exactly one of three states — ``done``, ``shed``
or ``failed`` — and is accounted for in the :class:`ServeResult`; no
frame is silently lost.

With an :class:`~repro.adaptive.switcher.AdaptiveSwitcher` the virtual
server also feeds the *measured* queue depth into the switcher at every
arrival and adopts the newly active candidate at drain boundaries
(pipeline empty), the serving-layer counterpart of the event
simulator's drain-before-switch.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.runtime.core import (
    PipelineSession,
    Transport,
    execute_stage,
    execute_stage_batch,
)
from repro.runtime.faults import RuntimeConfig, StageFailure
from repro.runtime.program import (
    PlanProgram,
    compile_plan,
    stack_frames,
    unstack_frames,
)
from repro.runtime.trace import TraceEvent, Tracer, coerce_tracer

__all__ = ["ServerConfig", "FrameRecord", "ServeResult", "PipelineServer"]

_SENTINEL = object()


@dataclass(frozen=True)
class ServerConfig:
    """Admission-control knobs of a :class:`PipelineServer`.

    ``queue_capacity`` bounds the frames concurrently *in the system*
    (waiting plus in service — the M/D/1/K convention), so it should
    exceed the plan's stage count for pipelining to reach full depth.
    ``policy`` picks what happens at the bound: ``"shed"`` rejects the
    arrival (recorded, never executed), ``"block"`` delays admission
    until a slot frees (closed-loop backpressure).  ``max_in_flight``
    further caps concurrently *served* frames on the virtual path
    (``1`` reproduces the frame-at-a-time baseline); the threaded path
    is structurally capped at one frame per stage slot.

    ``max_batch`` turns on cross-frame micro-batching: frames queued at
    the pipeline entrance coalesce into a ``(C, B, H, W)`` batch of up
    to ``max_batch`` frames that traverses every stage as one unit (one
    batched kernel pass per stage).  ``batch_timeout`` is how long a
    forming batch holds the entrance open for stragglers once the first
    stage is free; ``0`` launches with whatever is already queued — the
    deterministic default that the virtual replay matches analytically.
    ``max_batch=1`` (default) is the exact PR-5 per-frame server.
    Batching composes with admission control but not with the
    ``max_in_flight`` service cap (whose frame-at-a-time contract a
    batch would silently break).
    """

    queue_capacity: int = 8
    policy: str = "shed"  # "shed" | "block"
    max_in_flight: Optional[int] = None
    max_batch: int = 1
    batch_timeout: float = 0.0

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.policy not in ("shed", "block"):
            raise ValueError(f"unknown admission policy {self.policy!r}")
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1 or None")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.batch_timeout < 0:
            raise ValueError("batch_timeout must be >= 0")
        if self.max_batch > 1 and self.max_in_flight is not None:
            raise ValueError(
                "max_batch > 1 is incompatible with max_in_flight "
                "(a batch is served as one unit)"
            )


@dataclass(frozen=True)
class FrameRecord:
    """One submitted frame's fate.

    ``frame`` is the submission index; ``status`` is ``"done"``
    (completed, output available), ``"shed"`` (rejected at admission) or
    ``"failed"`` (admitted but unrecoverable — only possible when a
    stage lost every device and no replanner could repair it).
    ``admitted_at`` is when the frame entered the pipeline queue
    (> ``arrival`` only under ``policy="block"`` backpressure).
    ``batch`` is how many frames shared the cross-frame batch this one
    rode in (1 outside micro-batching).
    """

    frame: int
    arrival: float
    status: str
    admitted_at: float = -1.0
    completion: float = -1.0
    plan: str = ""
    replayed: bool = False
    batch: int = 1

    @property
    def admitted(self) -> bool:
        return self.status != "shed"

    @property
    def sojourn(self) -> float:
        """Arrival-to-completion latency (queueing + service)."""
        if self.status != "done":
            raise ValueError(f"frame {self.frame} is {self.status!r}")
        return self.completion - self.arrival


@dataclass
class ServeResult:
    """Aggregate output of one :meth:`PipelineServer.serve` run."""

    records: List[FrameRecord]
    outputs: Dict[int, np.ndarray]
    makespan: float
    trace: Tuple[TraceEvent, ...] = ()
    plan_usage: Dict[str, int] = field(default_factory=dict)

    @property
    def submitted(self) -> int:
        return len(self.records)

    @property
    def completed(self) -> "List[FrameRecord]":
        return [r for r in self.records if r.status == "done"]

    @property
    def shed(self) -> "List[FrameRecord]":
        return [r for r in self.records if r.status == "shed"]

    @property
    def failed(self) -> "List[FrameRecord]":
        return [r for r in self.records if r.status == "failed"]

    @property
    def sojourns(self) -> "List[float]":
        return [r.sojourn for r in self.completed]

    @property
    def mean_sojourn(self) -> float:
        s = self.sojourns
        return sum(s) / len(s) if s else 0.0

    def percentile_sojourn(self, q: float) -> float:
        """Sojourn percentile ``q`` in [0, 100] (nearest-rank)."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        s = sorted(self.sojourns)
        if not s:
            return 0.0
        rank = min(len(s) - 1, max(0, int(round(q / 100 * (len(s) - 1)))))
        return s[rank]

    @property
    def batch_sizes(self) -> "List[int]":
        """Per completed frame: the size of the batch it rode in."""
        return [r.batch for r in self.completed]

    @property
    def mean_batch(self) -> float:
        b = self.batch_sizes
        return sum(b) / len(b) if b else 0.0

    def percentile_batch(self, q: float) -> float:
        """Batch-size percentile ``q`` in [0, 100] (nearest-rank)."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        b = sorted(self.batch_sizes)
        if not b:
            return 0.0
        rank = min(len(b) - 1, max(0, int(round(q / 100 * (len(b) - 1)))))
        return float(b[rank])

    @property
    def throughput(self) -> float:
        """Completed frames per second of makespan."""
        if self.makespan <= 0:
            return 0.0
        return len(self.completed) / self.makespan

    def steady_throughput(self, warmup: Optional[int] = None) -> float:
        """Completion rate after the pipeline filled.

        Drops the first ``warmup`` completions (default: as many frames
        as the record shows distinct plans' stages could hold — callers
        usually pass the stage count) and measures completions per
        second over the remaining window.
        """
        done = sorted(self.completed, key=lambda r: r.completion)
        if warmup is None:
            warmup = max(1, len(done) // 10)
        if len(done) <= warmup:
            return self.throughput
        window = done[warmup - 1].completion, done[-1].completion
        span = window[1] - window[0]
        if span <= 0:
            return self.throughput
        return (len(done) - warmup) / span


class PipelineServer:
    """Serve frames through a compiled plan with bounded admission.

    Parameters
    ----------
    program:
        The compiled :class:`~repro.runtime.program.PlanProgram`.
    transport:
        Any runtime-core transport; its ``wall_clock`` flag selects the
        threaded or the virtual serving strategy.
    config:
        Admission control (:class:`ServerConfig`).
    tracer:
        Shared ``Tracer | bool | None`` contract.
    runtime_config:
        Enables the fault-tolerance ladder per stage.
    replanner:
        ``replan(dead) -> (PlanProgram, kind)`` — adopted when a stage
        fails outright (see :func:`~repro.runtime.faults.churn_replanner`).
    switcher:
        An :class:`~repro.adaptive.switcher.AdaptiveSwitcher`; the
        virtual server feeds it the measured queue depth per arrival
        and switches candidate plans at drain boundaries.
    """

    def __init__(
        self,
        program: PlanProgram,
        transport: Transport,
        config: Optional[ServerConfig] = None,
        tracer=None,
        runtime_config: "Optional[RuntimeConfig]" = None,
        replanner=None,
        switcher=None,
    ) -> None:
        self.program = program
        self.transport = transport
        self.config = config or ServerConfig()
        self.tracer = coerce_tracer(tracer)
        self.runtime_config = runtime_config
        self.replanner = replanner
        self.switcher = switcher
        self.virtual = not transport.wall_clock
        if switcher is not None and not self.virtual:
            raise ValueError(
                "adaptive switching is only supported on virtual-clock "
                "transports (drain boundaries are analytic there)"
            )
        self._session: Optional[PipelineSession] = None
        self._plan_name = program.plan.mode
        if switcher is not None:
            self._plan_name = switcher.active.name
        if self.virtual:
            # PipelineSession opens the transport and owns the per-frame
            # fault ladder + churn replanning.
            self._session = PipelineSession(
                program, transport, self.tracer, runtime_config, replanner
            )
        else:
            if runtime_config is not None:
                transport.configure(runtime_config)
            transport.open(program)
        self._closed = False

    @classmethod
    def from_plan(
        cls, model, plan, transport: Transport, **kwargs
    ) -> "PipelineServer":
        return cls(compile_plan(model, plan), transport, **kwargs)

    def close(self) -> None:
        if not self._closed:
            self.transport.close()
            self._closed = True

    def __enter__(self) -> "PipelineServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def serve(
        self,
        frames: "Union[int, Sequence[np.ndarray]]",
        arrivals: "Optional[Sequence[float]]" = None,
    ) -> ServeResult:
        """Admit ``frames`` at ``arrivals`` and serve them to completion.

        ``frames`` may be an int — ``n`` copies of a zero input frame,
        the cheap choice for timing-only runs (``SimTransport`` with
        ``compute=False``).  ``arrivals`` are submit times in seconds
        (virtual for the simulated backend, offsets from serve start
        for wall-clock backends); ``None`` submits back-to-back.
        """
        frames = self._materialise(frames)
        if arrivals is None:
            arrivals = [0.0] * len(frames)
        if len(arrivals) != len(frames):
            raise ValueError("arrivals must align one-to-one with frames")
        if any(b < a for a, b in zip(arrivals, arrivals[1:])):
            raise ValueError("arrivals must be non-decreasing")
        if self.virtual:
            if self.config.max_batch > 1:
                return self._serve_virtual_batched(frames, list(arrivals))
            return self._serve_virtual(frames, list(arrivals))
        return self._serve_threaded(frames, list(arrivals))

    def _materialise(self, frames) -> "List[np.ndarray]":
        if isinstance(frames, (int, np.integer)):
            if frames < 0:
                raise ValueError("frame count must be non-negative")
            model = self.transport.model
            if model is None:
                raise ValueError(
                    "an int frame count needs a transport with a model"
                )
            zero = np.zeros(model.input_shape, dtype=np.float32)
            return [zero] * int(frames)
        return list(frames)

    # ------------------------------------------------------------------
    # Virtual-clock strategy: serial execution, analytic interleaving.
    # ------------------------------------------------------------------
    def _serve_virtual(
        self, frames: "List[np.ndarray]", arrivals: "List[float]"
    ) -> ServeResult:
        cfg = self.config
        session = self._session
        assert session is not None
        completions: "List[float]" = []  # admitted frames, FIFO order
        records: "List[FrameRecord]" = []
        outputs: "Dict[int, np.ndarray]" = {}
        plan_usage: "Dict[str, int]" = {}
        last_admit = 0.0
        for index, (x, t) in enumerate(zip(frames, arrivals)):
            in_system = [c for c in completions if c > t]
            depth = len(in_system)
            self._observe(t, depth)
            if depth == 0:
                self._maybe_switch(index)
            if depth >= cfg.queue_capacity:
                if cfg.policy == "shed":
                    records.append(FrameRecord(index, t, "shed"))
                    continue
                # Backpressure: wait until the system drains below the
                # bound — the moment the (depth - capacity + 1)-th
                # oldest in-flight frame completes.
                admit_at = sorted(in_system)[depth - cfg.queue_capacity]
            else:
                admit_at = t
            if cfg.max_in_flight is not None and (
                len(completions) >= cfg.max_in_flight
            ):
                admit_at = max(admit_at, completions[-cfg.max_in_flight])
            admit_at = max(admit_at, last_admit)
            last_admit = admit_at
            try:
                out = session.run_frame(x, at=admit_at)
            except StageFailure:
                # Past the whole ladder (every device of a stage is dead
                # and no replanner could repair it): the frame is
                # reported failed, never silently dropped.
                records.append(
                    FrameRecord(index, t, "failed", admitted_at=admit_at)
                )
                continue
            done = self.transport.clock()
            completions.append(done)
            outputs[index] = out
            plan_usage[self._plan_name] = plan_usage.get(self._plan_name, 0) + 1
            records.append(
                FrameRecord(
                    index, t, "done", admitted_at=admit_at,
                    completion=done, plan=self._plan_name,
                )
            )
        makespan = max(completions) if completions else 0.0
        trace = self.tracer.events if self.tracer is not None else ()
        return ServeResult(records, outputs, makespan, trace, plan_usage)

    # ------------------------------------------------------------------
    # Virtual-clock strategy with cross-frame micro-batching: the same
    # analytic replay, but frames queued at the pipeline entrance
    # coalesce into batches that traverse the stages as one unit.
    # ------------------------------------------------------------------
    def _serve_virtual_batched(
        self, frames: "List[np.ndarray]", arrivals: "List[float]"
    ) -> ServeResult:
        """Analytic replay of the threaded batching policy.

        A batch forms at the pipeline entrance: frame ``i`` joins the
        forming batch while the batch is below ``max_batch`` and the
        batch has not launched yet.  The launch instant is
        ``max(stage-0 free, first member's admission + batch_timeout)``
        — the entrance worker launches as soon as the first stage frees
        *and* the timeout window has closed (immediately, for the
        default ``batch_timeout=0``); a batch that fills launches on its
        last member's admission.  Everything is driven by the
        transport's deterministic FIFO recurrence, so the completion
        and shed sets match what the threaded server produces under
        unambiguous spacing.

        Under ``policy="block"`` the unblock instant matches the
        threaded block semantics: when enough *in-flight* completions
        alone drain the system below the bound, the blocked frame
        admits at the freeing completion and may still join the forming
        batch it waited behind (exactly as a threaded arrival enters
        the admission queue while the entrance holds the window open).
        Only when draining requires the forming batch's own members to
        complete — their departure times do not exist until the batch
        runs — is the batch forced to launch first.
        """
        cfg = self.config
        session = self._session
        assert session is not None
        completions: "List[float]" = []  # launched frames, FIFO order
        records: "List[FrameRecord]" = []
        outputs: "Dict[int, np.ndarray]" = {}
        plan_usage: "Dict[str, int]" = {}
        #: forming batch: ``(index, frame, admitted_at)`` per member.
        pending: "List[Tuple[int, np.ndarray, float]]" = []
        last_admit = 0.0

        def launch() -> None:
            """Run the forming batch as one unit; record its frames."""
            batch, pending[:] = list(pending), []
            if not batch:
                return
            admits = [a for _, _, a in batch]
            if len(batch) < cfg.max_batch:
                at = max(admits[-1], admits[0] + cfg.batch_timeout)
            else:
                at = admits[-1]  # filled up: launches on the last admit
            try:
                outs = session.run_stacked([x for _, x, _ in batch], at=at)
            except StageFailure:
                for (index, _, admit), _a in zip(batch, admits):
                    records.append(
                        FrameRecord(
                            index, arrivals[index], "failed",
                            admitted_at=admit, batch=len(batch),
                        )
                    )
                return
            done = self.transport.clock()
            name = self._plan_name
            plan_usage[name] = plan_usage.get(name, 0) + len(batch)
            for (index, _, admit), out in zip(batch, outs):
                completions.append(done)
                outputs[index] = out
                records.append(
                    FrameRecord(
                        index, arrivals[index], "done", admitted_at=admit,
                        completion=done, plan=name, batch=len(batch),
                    )
                )

        def launch_time() -> float:
            """When the current forming batch leaves the entrance."""
            first_admit = pending[0][2]
            return max(
                self.transport.stage_free_time(0),
                first_admit + cfg.batch_timeout,
            )

        for index, (x, t) in enumerate(zip(frames, arrivals)):
            # A forming batch whose launch instant has passed is gone
            # before this arrival can reach the entrance.
            if pending and t > launch_time():
                launch()
            in_system = [c for c in completions if c > t]
            depth = len(in_system) + len(pending)
            self._observe(t, depth)
            if depth == 0:
                self._maybe_switch(index)
            if depth >= cfg.queue_capacity:
                if cfg.policy == "shed":
                    records.append(FrameRecord(index, t, "shed"))
                    continue
                # Backpressure: the system must drain ``needed`` frames
                # below the bound before this arrival admits.
                needed = depth - cfg.queue_capacity + 1
                if needed <= len(in_system):
                    # In-flight completions alone free the slot: admit
                    # at the needed-th oldest completion.  The frame may
                    # still join the forming batch below — matching the
                    # threaded server, where a blocked arrival enters
                    # the queue while the entrance window is open.
                    admit_at = sorted(in_system)[needed - 1]
                else:
                    # Draining needs the forming batch's own members to
                    # depart; their completion times only exist once the
                    # batch runs, so it must launch now.
                    launch()
                    in_system = [c for c in completions if c > t]
                    depth = len(in_system)
                    if depth < cfg.queue_capacity:
                        admit_at = t
                    else:
                        admit_at = sorted(in_system)[
                            depth - cfg.queue_capacity
                        ]
            else:
                admit_at = t
            admit_at = max(admit_at, last_admit)
            last_admit = admit_at
            if pending and admit_at > launch_time():
                launch()
            pending.append((index, x, admit_at))
            if len(pending) >= cfg.max_batch:
                launch()
        launch()  # flush the final forming batch
        records.sort(key=lambda r: r.frame)
        makespan = max(completions) if completions else 0.0
        trace = self.tracer.events if self.tracer is not None else ()
        return ServeResult(records, outputs, makespan, trace, plan_usage)

    def _observe(self, now: float, depth: int) -> None:
        """Feed the measured queue depth into the adaptive switcher."""
        if self.switcher is not None:
            self.switcher.on_arrival(now, queue_depth=depth)

    def _maybe_switch(self, frame: int) -> None:
        """Adopt the switcher's active candidate at a drain boundary."""
        if self.switcher is None:
            return
        active = self.switcher.active
        if active.name == self._plan_name:
            return
        model = self.transport.model
        program = compile_plan(model, active.plan)
        self.transport.rebind(program)
        assert self._session is not None
        self._session.program = program
        self.program = program
        self._plan_name = active.name
        if self.tracer is not None:
            now = self.transport.clock()
            self.tracer.emit(
                TraceEvent("replan", frame, 0, active.name, now, now)
            )

    # ------------------------------------------------------------------
    # Wall-clock strategy: one worker thread per stage, slot queues.
    # ------------------------------------------------------------------
    def _serve_threaded(
        self, frames: "List[np.ndarray]", arrivals: "List[float]"
    ) -> ServeResult:
        cfg = self.config
        transport = self.transport
        n_stages = self.program.n_stages
        # qs[0] is the bounded admission queue; qs[1..n-1] are the
        # single-slot stage hand-offs (one frame per stage slot); the
        # final queue is unbounded so completion never backpressures.
        qs: "List[queue.Queue]" = [queue.Queue(maxsize=cfg.queue_capacity)]
        qs += [queue.Queue(maxsize=1) for _ in range(n_stages - 1)]
        qs.append(queue.Queue())
        lock = threading.Lock()
        pending: "Dict[int, Dict]" = {}  # fid -> {arrival, admitted_at, x0}
        outputs: "Dict[int, np.ndarray]" = {}
        done_at: "Dict[int, float]" = {}
        errors: "Dict[int, BaseException]" = {}
        batch_of: "Dict[int, int]" = {}  # fid -> batch size it rode in

        def run_one(stage_index, fid, x):
            """One queue item through one stage — ``fid`` is an int for
            a single frame, a tuple for a cross-frame batch unit."""
            try:
                if isinstance(fid, tuple):
                    return execute_stage_batch(
                        transport, self.program, stage_index, x, fid,
                        self.tracer, self.runtime_config,
                    )
                return execute_stage(
                    transport, self.program, stage_index, x, fid,
                    self.tracer, self.runtime_config,
                )
            except Exception as exc:  # noqa: BLE001 - fate recorded
                with lock:
                    for f in fid if isinstance(fid, tuple) else (fid,):
                        errors[f] = exc
                return None

        def form(in_q: "queue.Queue"):
            """Coalesce queued frames into a batch at the entrance.

            Returns ``(items, saw_sentinel)``: blocks for the first
            frame, then drains stragglers already queued (holding the
            window open up to ``batch_timeout``) until ``max_batch``.
            """
            item = in_q.get()
            if item is _SENTINEL:
                return [], True
            items = [item]
            deadline = time.monotonic() + cfg.batch_timeout
            while len(items) < cfg.max_batch:
                wait = deadline - time.monotonic()
                try:
                    nxt = (
                        in_q.get(timeout=wait)
                        if wait > 0
                        else in_q.get_nowait()
                    )
                except queue.Empty:
                    break
                if nxt is _SENTINEL:
                    return items, True
                items.append(nxt)
            return items, False

        def worker(stage_index: int) -> None:
            in_q, out_q = qs[stage_index], qs[stage_index + 1]
            batching = stage_index == 0 and cfg.max_batch > 1
            while True:
                if batching:
                    items, stop = form(in_q)
                    if items:
                        fids = tuple(fid for fid, _ in items)
                        with lock:
                            for f in fids:
                                batch_of[f] = len(fids)
                        if len(items) == 1:
                            # Singleton batches take the exact per-frame
                            # path (bit-compat timestamps and events).
                            fid, x = items[0]
                            out_q.put((fid, run_one(stage_index, fid, x)))
                        else:
                            x4 = stack_frames([x for _, x in items])
                            out_q.put((fids, run_one(stage_index, fids, x4)))
                    if stop:
                        out_q.put(_SENTINEL)
                        return
                    continue
                item = in_q.get()
                if item is _SENTINEL:
                    out_q.put(_SENTINEL)
                    return
                fid, x = item
                if x is None:  # poisoned upstream; just forward the id(s)
                    out_q.put((fid, None))
                    continue
                out_q.put((fid, run_one(stage_index, fid, x)))

        def collect() -> None:
            while True:
                item = qs[-1].get()
                if item is _SENTINEL:
                    return
                fid, y = item
                with lock:
                    if y is None:
                        continue
                    now = transport.clock()
                    if isinstance(fid, tuple):
                        for f, out in zip(fid, unstack_frames(y)):
                            outputs[f] = out
                            done_at[f] = now
                    else:
                        outputs[fid] = y
                        done_at[fid] = now

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(n_stages)
        ]
        collector = threading.Thread(target=collect, daemon=True)
        for t in threads:
            t.start()
        collector.start()

        epoch = transport.clock()
        shed: "List[Tuple[int, float]]" = []
        for index, x in enumerate(frames):
            target = epoch + arrivals[index]
            wait = target - transport.clock()
            if wait > 0:
                time.sleep(wait)
            x0 = np.ascontiguousarray(x, dtype=np.float32)
            arrival_t = transport.clock()
            item = (index, x0)
            if cfg.policy == "block":
                # Closed-loop backpressure also honours the transport's
                # own buffering: a saturated shm slot ring would stall a
                # stage thread on the send, so admission waits for the
                # ring to drain as well as for a queue slot.
                while transport.backpressure() >= 1.0:
                    time.sleep(0.0005)
                qs[0].put(item)
            else:
                if transport.backpressure() >= 1.0:
                    # The transport itself is saturated (e.g. a full
                    # shm slot ring): queueing the frame would only
                    # stall a stage thread on the send, so shed now.
                    shed.append((index, arrival_t))
                    continue
                try:
                    qs[0].put_nowait(item)
                except queue.Full:
                    shed.append((index, arrival_t))
                    continue
            with lock:
                pending[index] = {
                    "arrival": arrival_t,
                    "admitted_at": transport.clock(),
                    "x0": x0,
                }
        qs[0].put(_SENTINEL)
        for t in threads:
            t.join()
        collector.join()

        replayed = self._replay_failed(pending, outputs, done_at, errors)
        records: "List[FrameRecord]" = []
        for index, arrival_t in shed:
            records.append(FrameRecord(index, arrival_t, "shed"))
        for fid, info in pending.items():
            if fid in outputs:
                records.append(
                    FrameRecord(
                        fid, info["arrival"], "done",
                        admitted_at=info["admitted_at"],
                        completion=done_at[fid],
                        plan=self._plan_name,
                        replayed=fid in replayed,
                        batch=batch_of.get(fid, 1),
                    )
                )
            else:
                records.append(
                    FrameRecord(
                        fid, info["arrival"], "failed",
                        admitted_at=info["admitted_at"],
                        batch=batch_of.get(fid, 1),
                    )
                )
        records.sort(key=lambda r: r.frame)
        makespan = max(done_at.values()) - epoch if done_at else 0.0
        trace = self.tracer.events if self.tracer is not None else ()
        usage = {self._plan_name: len(outputs)} if outputs else {}
        return ServeResult(records, outputs, makespan, trace, usage)

    def _replay_failed(
        self,
        pending: "Dict[int, Dict]",
        outputs: "Dict[int, np.ndarray]",
        done_at: "Dict[int, float]",
        errors: "Dict[int, BaseException]",
    ) -> "set":
        """Drain-time recovery: replay unrecoverable frames on a fresh plan.

        A frame only lands here when a stage raised past the in-stage
        ladder (:class:`StageFailure` — every device of a stage died).
        With a replanner the server adopts a plan over the survivors and
        replays each lost frame from its original input; without one the
        frames stay ``failed`` (reported, never silent).
        """
        failed = sorted(fid for fid in pending if fid not in outputs)
        replayed: "set" = set()
        if not failed or self.replanner is None:
            return replayed
        if self.runtime_config is not None and not self.runtime_config.recover:
            return replayed
        dead = self.transport.dead_devices()
        if not dead:
            return replayed
        result = self.replanner(dead)
        if result is None:
            return replayed
        program, kind = result
        if self.tracer is not None:
            now = self.transport.clock()
            tag = ",".join(sorted(dead))
            self.tracer.emit(TraceEvent(kind, failed[0], 0, tag, now, now))
        self.transport.rebind(program)
        self.program = program
        for fid in failed:
            x = pending[fid]["x0"]
            try:
                for index in range(program.n_stages):
                    x = execute_stage(
                        self.transport, program, index, x, fid,
                        self.tracer, self.runtime_config,
                    )
            except StageFailure:
                continue  # stays failed; recorded as such
            outputs[fid] = x
            done_at[fid] = self.transport.clock()
            errors.pop(fid, None)
            replayed.add(fid)
            if self.tracer is not None:
                now = self.transport.clock()
                self.tracer.emit(
                    TraceEvent("frame_replayed", fid, 0, "", now, now)
                )
        return replayed
