"""Multi-frame pipelined serving: admission control over the runtime core."""

from repro.serve.server import (
    FrameRecord,
    PipelineServer,
    ServeResult,
    ServerConfig,
)

__all__ = [
    "FrameRecord",
    "PipelineServer",
    "ServeResult",
    "ServerConfig",
]
