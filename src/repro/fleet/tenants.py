"""Tenant request classes: per-tenant load, SLO and admission policy.

A :class:`TenantClass` describes one stream of inference requests the
fleet must serve: which registered model it runs, its expected Poisson
arrival rate, the latency SLO a completion must meet to count as
*goodput*, a placement priority, and the admission policy its bounded
queue applies when full (``shed`` rejects, ``block`` backpressures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.serve.server import ServerConfig

__all__ = ["TenantClass"]


@dataclass(frozen=True)
class TenantClass:
    """One tenant's request class.

    ``priority`` orders placement: higher-priority tenants pick their
    devices first (ties broken by rate, then name).  ``min_devices`` /
    ``max_devices`` bound the device subsets the scheduler may try for
    this tenant's pipeline.
    """

    name: str
    model: str
    rate: float
    slo: float
    priority: int = 0
    policy: str = "shed"  # "shed" | "block"
    queue_capacity: int = 8
    min_devices: int = 1
    max_devices: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant needs a name")
        if self.rate <= 0:
            raise ValueError(f"{self.name}: arrival rate must be positive")
        if self.slo <= 0:
            raise ValueError(f"{self.name}: latency SLO must be positive")
        if self.policy not in ("shed", "block"):
            raise ValueError(
                f"{self.name}: unknown admission policy {self.policy!r}"
            )
        if self.queue_capacity < 1:
            raise ValueError(f"{self.name}: queue_capacity must be >= 1")
        if self.min_devices < 1:
            raise ValueError(f"{self.name}: min_devices must be >= 1")
        if self.max_devices is not None and self.max_devices < self.min_devices:
            raise ValueError(
                f"{self.name}: max_devices must be >= min_devices"
            )

    def server_config(
        self, max_batch: int = 1, batch_timeout: float = 0.0
    ) -> ServerConfig:
        """This tenant's admission control as a :class:`ServerConfig`."""
        return ServerConfig(
            queue_capacity=self.queue_capacity,
            policy=self.policy,
            max_batch=max_batch,
            batch_timeout=batch_timeout,
        )
