"""Multi-tenant fleet serving: many models, one shared device pool.

The fleet layer packs several tenants' pipelines onto one cluster:

* :class:`~repro.fleet.registry.ModelRegistry` — named models with
  prebuilt engines, warm cost tables and cached compiled programs.
* :class:`~repro.fleet.tenants.TenantClass` — per-tenant arrival rate,
  latency SLO, priority and admission policy.
* :class:`~repro.fleet.scheduler.FleetScheduler` — contention-aware
  placement over a :class:`~repro.cluster.device.DevicePool` (shared
  devices get occupancy-scaled effective capacity) with fleet-wide
  churn response.
* :class:`~repro.fleet.server.FleetServer` /
  :class:`~repro.fleet.server.TenantSession` — the serving split:
  shared transports and admission, thin per-tenant sessions whose
  outputs stay bit-identical to each tenant running alone.

See ``docs/fleet.md`` for the full model.
"""

from repro.fleet.registry import ModelEntry, ModelRegistry
from repro.fleet.scheduler import FleetScheduler, Placement
from repro.fleet.server import (
    FleetResult,
    FleetServer,
    TenantResult,
    TenantSession,
)
from repro.fleet.tenants import TenantClass

__all__ = [
    "ModelEntry",
    "ModelRegistry",
    "TenantClass",
    "FleetScheduler",
    "Placement",
    "FleetServer",
    "FleetResult",
    "TenantResult",
    "TenantSession",
]
