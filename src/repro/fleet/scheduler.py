"""Contention- and churn-aware placement of tenant pipelines.

The :class:`FleetScheduler` packs several tenants' pipelines onto one
shared :class:`~repro.cluster.device.Cluster` through a
:class:`~repro.cluster.device.DevicePool`:

* **Greedy priority placement** — tenants place in priority order; each
  tries the ``k`` least-occupied live devices for growing ``k`` and
  keeps the smallest footprint whose Theorem-2 latency estimate meets
  its SLO (or the best estimate available when none does).
* **Contention awareness** — every candidate subset is costed on an
  *effective* cluster whose shared devices carry occupancy-scaled
  capacity (``capacity / holders``), re-using the same vectorized
  segment tables and :func:`~repro.core.plan.plan_cost` the planners
  already use; after all tenants hold leases a final re-cost pass
  rebuilds every plan at the final occupancies.
* **Churn awareness** — a device death voids its leases fleet-wide
  (:meth:`on_device_dead` names every affected tenant) and
  :meth:`replace_tenant` re-places a tenant over the survivors at
  current occupancies, which is what the fleet server's per-tenant
  replanners call from the PR-4 recovery ladder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.adaptive.queueing import average_inference_latency, stable
from repro.cluster.device import Cluster, DeviceLease, DevicePool
from repro.core.plan import PipelinePlan, plan_cost
from repro.cost.comm import NetworkModel
from repro.cost.flops import CostOptions
from repro.fleet.registry import ModelRegistry
from repro.fleet.tenants import TenantClass
from repro.schemes.base import PlanningError, Scheme
from repro.schemes.pico import PicoScheme

__all__ = ["Placement", "FleetScheduler"]


@dataclass(frozen=True)
class Placement:
    """One tenant's scheduled pipeline.

    ``devices`` is the granted (leased) device set — the grant a
    tenant's adaptive switcher is restricted to; ``plan`` was costed on
    the occupancy-scaled effective cluster, so ``period`` / ``latency``
    / ``estimate`` already price in contention from co-located tenants.
    """

    tenant: str
    devices: "Tuple[str, ...]"
    plan: PipelinePlan
    period: float
    latency: float
    estimate: float  # Theorem-2 latency at the tenant's arrival rate
    meets_slo: bool
    leases: "Tuple[DeviceLease, ...]" = ()


class FleetScheduler:
    """Places every tenant's pipeline onto the shared device pool."""

    def __init__(
        self,
        registry: ModelRegistry,
        cluster: Cluster,
        network: NetworkModel,
        options: Optional[CostOptions] = None,
    ) -> None:
        from repro.cost.comm import coerce_network

        self.registry = registry
        self.cluster = cluster
        # A Topology collapses to its flat summary for placement costing
        # (the event engine charges the real per-link times).
        self.network = coerce_network(network)
        self.options = options if options is not None else registry.options
        self.pool = DevicePool(cluster)
        self.tenants: "Dict[str, TenantClass]" = {}
        self.placements: "Dict[str, Placement]" = {}
        self._schemes: "Dict[str, Scheme]" = {}

    # -- placement -----------------------------------------------------
    def place(
        self,
        tenants: "Sequence[TenantClass]",
        schemes: "Optional[Dict[str, Scheme]]" = None,
    ) -> "Dict[str, Placement]":
        """Place every tenant; returns the final (re-costed) placements.

        ``schemes`` optionally maps tenant names to the planner each
        should use (default: :class:`~repro.schemes.pico.PicoScheme`).
        """
        if schemes:
            self._schemes.update(schemes)
        order = sorted(tenants, key=lambda t: (-t.priority, -t.rate, t.name))
        for tenant in order:
            if tenant.model not in self.registry:
                raise KeyError(
                    f"tenant {tenant.name!r} wants unregistered model "
                    f"{tenant.model!r}"
                )
            self.tenants[tenant.name] = tenant
            self.placements[tenant.name] = self._place_one(tenant)
        self._recost()
        return dict(self.placements)

    def _scheme_for(self, tenant: TenantClass) -> Scheme:
        scheme = self._schemes.get(tenant.name)
        if scheme is None:
            scheme = PicoScheme()
            self._schemes[tenant.name] = scheme
        return scheme

    def _place_one(self, tenant: TenantClass) -> Placement:
        """Greedy subset search over the least-occupied live devices."""
        model = self.registry.get(tenant.model).model
        scheme = self._scheme_for(tenant)
        candidates = self.pool.candidates()
        if not candidates:
            raise PlanningError("the device pool has no live devices")
        lo = min(tenant.min_devices, len(candidates))
        hi = len(candidates)
        if tenant.max_devices is not None:
            hi = min(hi, tenant.max_devices)
        hi = max(hi, lo)
        best = None
        best_key = None
        errors = []
        for k in range(lo, hi + 1):
            names = [d.name for d in candidates[:k]]
            # extra_holders=1 previews the capacity each device would
            # give this tenant once it joins the current holders.
            effective = self.pool.effective_cluster(names, extra_holders=1)
            try:
                plan = scheme.plan(model, effective, self.network, self.options)
            except PlanningError as exc:
                errors.append(f"k={k}: {exc}")
                continue
            cost = plan_cost(model, plan, self.network, self.options)
            estimate = float(average_inference_latency(
                cost.period, cost.latency, tenant.rate
            ))
            meets = bool(
                stable(cost.period, tenant.rate) and estimate <= tenant.slo
            )
            key = (not meets, estimate, k)
            if best_key is None or key < best_key:
                best = (plan, cost, estimate, meets)
                best_key = key
            if meets:
                break  # smallest footprint that meets the SLO wins
        if best is None:
            raise PlanningError(
                f"no placement fits tenant {tenant.name!r} "
                f"({'; '.join(errors)})"
            )
        plan, cost, estimate, meets = best
        granted = tuple(d.name for d in plan.all_devices)
        leases = self.pool.lease(tenant.name, granted)
        return Placement(
            tenant.name, granted, plan,
            cost.period, cost.latency, estimate, meets, leases,
        )

    def _recost(self) -> None:
        """Final contention pass: rebuild every plan at final occupancy.

        Greedy placement previewed each tenant's capacity before later
        tenants joined; once every lease is committed the true sharing
        is known, so each tenant's plan is re-planned on its granted
        devices at their *final* effective capacities (a tenant that
        cannot re-plan keeps its committed plan and estimates).
        """
        order = sorted(
            self.placements,
            key=lambda n: (-self.tenants[n].priority, n),
        )
        for name in order:
            tenant = self.tenants[name]
            placement = self.placements[name]
            alive = [d for d in placement.devices if d not in self.pool.dead]
            if not alive:
                continue
            effective = self.pool.effective_cluster(alive)
            model = self.registry.get(tenant.model).model
            try:
                plan = self._scheme_for(tenant).plan(
                    model, effective, self.network, self.options
                )
            except PlanningError:
                continue
            cost = plan_cost(model, plan, self.network, self.options)
            estimate = float(average_inference_latency(
                cost.period, cost.latency, tenant.rate
            ))
            meets = bool(
                stable(cost.period, tenant.rate) and estimate <= tenant.slo
            )
            leases = tuple(
                DeviceLease(d, name, 1.0 / max(1, self.pool.occupancy(d)))
                for d in placement.devices
            )
            self.placements[name] = Placement(
                name, placement.devices, plan,
                cost.period, cost.latency, estimate, meets, leases,
            )

    # -- churn ---------------------------------------------------------
    def on_device_dead(self, device: str) -> "Tuple[str, ...]":
        """Retire ``device``; returns the tenants it strands (fleet-wide)."""
        if device in self.pool.dead:
            return ()
        return self.pool.mark_dead(device)

    def replace_tenant(
        self, name: str, dead: "Sequence[str]" = ()
    ) -> Placement:
        """Re-place one tenant over the survivors (the churn response).

        Marks any newly reported ``dead`` devices, releases the tenant's
        surviving leases, and runs the same greedy placement at current
        occupancies.  Raises :class:`~repro.schemes.base.PlanningError`
        when nothing fits — the caller degrades (single-device fallback)
        exactly as the per-session churn ladder does.
        """
        for device in dead:
            if device in self.pool._by_name and device not in self.pool.dead:
                self.pool.mark_dead(device)
        tenant = self.tenants[name]
        self.pool.release(name)
        placement = self._place_one(tenant)
        self.placements[name] = placement
        return placement

    def grant_of(self, name: str) -> "Tuple[str, ...]":
        """The device names tenant ``name`` currently holds leases on."""
        placement = self.placements.get(name)
        return placement.devices if placement is not None else ()
