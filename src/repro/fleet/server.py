"""Fleet serving: a shared server owning transports, thin tenant sessions.

This splits the single-tenant :class:`~repro.serve.server.PipelineServer`
role in two:

* :class:`FleetServer` owns the shared side — the parent transport (a
  factory whose :meth:`~repro.runtime.core.Transport.open_tenant` views
  share one fleet-wide dead-device set), the
  :class:`~repro.fleet.scheduler.FleetScheduler` placements, and
  admission of tenants onto the pool.
* :class:`TenantSession` is the thin per-tenant half: one granted
  transport view, one admission queue (the tenant's
  :class:`~repro.serve.server.ServerConfig`), and the per-frame serving
  loop — delegated to the proven ``PipelineServer`` machinery so served
  outputs stay bit-identical to a tenant running alone.

Churn is fleet-wide: each session's replanner routes through
:meth:`FleetScheduler.replace_tenant`, so one device death re-places
every affected tenant over the survivors (bit-exact frame replay
preserved by the session ladder), and a tenant whose switcher holds a
fleet grant may only switch onto devices the scheduler leased it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fleet.registry import ModelRegistry
from repro.fleet.scheduler import FleetScheduler, Placement
from repro.fleet.tenants import TenantClass
from repro.runtime.core import Transport
from repro.runtime.faults import RuntimeConfig, StageFailure
from repro.schemes.base import PlanningError, Scheme
from repro.serve.server import PipelineServer, ServeResult, ServerConfig

__all__ = ["TenantSession", "TenantResult", "FleetResult", "FleetServer"]


class TenantSession:
    """One tenant's serving half: granted view + admission + frames."""

    def __init__(
        self,
        tenant: TenantClass,
        placement: Placement,
        server: PipelineServer,
    ) -> None:
        self.tenant = tenant
        self.placement = placement
        self.server = server

    @property
    def transport(self) -> Transport:
        return self.server.transport

    def serve(
        self,
        frames,
        arrivals: "Optional[Sequence[float]]" = None,
    ) -> ServeResult:
        """Serve this tenant's workload through its granted view."""
        return self.server.serve(frames, arrivals)

    def close(self) -> None:
        self.server.close()


@dataclass
class TenantResult:
    """One tenant's served workload, judged against its SLO."""

    tenant: TenantClass
    placement: Placement
    result: ServeResult

    @property
    def in_slo(self) -> "List":
        return [
            r for r in self.result.completed if r.sojourn <= self.tenant.slo
        ]

    @property
    def slo_attainment(self) -> float:
        """In-SLO completions over *submitted* frames (shed counts
        against the tenant — an unserved request never met its SLO)."""
        if not self.result.submitted:
            return 1.0
        return len(self.in_slo) / self.result.submitted

    @property
    def goodput(self) -> float:
        """In-SLO completions per second of this tenant's makespan."""
        if self.result.makespan <= 0:
            return 0.0
        return len(self.in_slo) / self.result.makespan


@dataclass
class FleetResult:
    """Every tenant's result plus fleet-level aggregates."""

    tenants: "Dict[str, TenantResult]" = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return max(
            (tr.result.makespan for tr in self.tenants.values()), default=0.0
        )

    @property
    def completed(self) -> int:
        return sum(len(tr.result.completed) for tr in self.tenants.values())

    @property
    def in_slo(self) -> int:
        return sum(len(tr.in_slo) for tr in self.tenants.values())

    @property
    def aggregate_goodput(self) -> float:
        """Fleet-wide in-SLO completions per second of fleet makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.in_slo / self.makespan

    def attainment(self) -> "Dict[str, float]":
        return {
            name: tr.slo_attainment for name, tr in sorted(self.tenants.items())
        }


class FleetServer:
    """The shared half of fleet serving: transports, placement, admission.

    ``transport`` is the parent/factory transport — typically never
    opened itself; every admitted tenant gets an
    :meth:`~repro.runtime.core.Transport.open_tenant` view bound to its
    own program and engine, all views sharing one fleet-wide
    dead-device set.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        scheduler: FleetScheduler,
        transport: Transport,
        *,
        runtime_config: "Optional[RuntimeConfig]" = None,
        trace=None,
        max_batch: int = 1,
        batch_timeout: float = 0.0,
    ) -> None:
        self.registry = registry
        self.scheduler = scheduler
        self.transport = transport
        self.runtime_config = runtime_config
        self.trace = trace
        self.max_batch = max_batch
        self.batch_timeout = batch_timeout
        self.sessions: "Dict[str, TenantSession]" = {}
        self._switchers: "Dict[str, object]" = {}
        self._closed = False

    # -- admission -----------------------------------------------------
    def admit(
        self,
        tenants: "Sequence[TenantClass]",
        schemes: "Optional[Dict[str, Scheme]]" = None,
        switchers: "Optional[Dict[str, object]]" = None,
    ) -> "Dict[str, Placement]":
        """Place ``tenants`` on the pool and open a session for each.

        ``switchers`` optionally maps tenant names to an
        :class:`~repro.adaptive.switcher.AdaptiveSwitcher`; each is
        granted its tenant's leased devices
        (:meth:`~repro.adaptive.switcher.AdaptiveSwitcher.grant`), so a
        tenant may only switch to a plan within the scheduler's grant.
        """
        placements = self.scheduler.place(tenants, schemes)
        if switchers:
            self._switchers.update(switchers)
        for tenant in tenants:
            self._open_session(tenant, placements[tenant.name])
        return placements

    def _open_session(
        self, tenant: TenantClass, placement: Placement
    ) -> TenantSession:
        entry = self.registry.get(tenant.model)
        program = self.registry.compile(tenant.model, placement.plan)
        view = self.transport.open_tenant(engine=entry.engine)
        switcher = self._switchers.get(tenant.name)
        if switcher is not None:
            switcher.grant(placement.devices)
        server = PipelineServer(
            program,
            view,
            tenant.server_config(self.max_batch, self.batch_timeout),
            tracer=self.trace,
            runtime_config=self.runtime_config,
            replanner=(
                self._fleet_replanner(tenant)
                if self.runtime_config is not None
                else None
            ),
            switcher=switcher,
        )
        session = TenantSession(tenant, placement, server)
        self.sessions[tenant.name] = session
        return session

    # -- fleet-wide churn ----------------------------------------------
    def _fleet_replanner(self, tenant: TenantClass):
        """A session replanner routed through the fleet scheduler.

        ``replan(dead) -> (PlanProgram, kind)`` — releases the tenant's
        stranded leases, re-places it over the survivors at current
        occupancies, and re-grants its switcher; degrades to the
        fastest surviving device when no placement fits, exactly like
        :func:`~repro.runtime.faults.churn_replanner`.
        """

        def replan(dead):
            from repro.runtime.program import compile_plan
            from repro.schemes.local import local_fallback_plan

            entry = self.registry.get(tenant.model)
            try:
                placement = self.scheduler.replace_tenant(tenant.name, dead)
            except PlanningError:
                survivors = self.scheduler.pool.alive()
                if not survivors:
                    raise StageFailure(
                        "every device in the fleet pool is dead"
                    ) from None
                best = max(survivors, key=lambda d: d.capacity)
                plan = local_fallback_plan(entry.model, best)
                self.scheduler.pool.lease(tenant.name, (best.name,))
                return compile_plan(entry.model, plan), "degraded"
            session = self.sessions.get(tenant.name)
            if session is not None:
                session.placement = placement
            switcher = self._switchers.get(tenant.name)
            if switcher is not None:
                try:
                    switcher.grant(placement.devices)
                except ValueError:
                    switcher.grant(None)
            program = self.registry.compile(tenant.model, placement.plan)
            return program, "replan"

        return replan

    # -- serving -------------------------------------------------------
    def serve(
        self,
        workloads: "Dict[str, Tuple]",
    ) -> FleetResult:
        """Serve every tenant's workload; returns the fleet aggregate.

        ``workloads`` maps tenant name to ``(frames, arrivals)`` as
        :meth:`PipelineServer.serve` accepts them.  Virtual-clock
        sessions replay serially (their interleaving is analytic);
        wall-clock sessions genuinely overlap, one serving thread per
        tenant.
        """
        unknown = set(workloads) - set(self.sessions)
        if unknown:
            raise KeyError(f"no session for tenants {sorted(unknown)}")
        fleet = FleetResult()
        virtual = [
            n for n in workloads if self.sessions[n].server.virtual
        ]
        walled = [n for n in workloads if n not in set(virtual)]
        for name in virtual:
            frames, arrivals = workloads[name]
            result = self.sessions[name].serve(frames, arrivals)
            fleet.tenants[name] = TenantResult(
                self.sessions[name].tenant,
                self.sessions[name].placement,
                result,
            )
        if walled:
            results: "Dict[str, ServeResult]" = {}
            errors: "Dict[str, BaseException]" = {}

            def run(name: str) -> None:
                frames, arrivals = workloads[name]
                try:
                    results[name] = self.sessions[name].serve(frames, arrivals)
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    errors[name] = exc

            threads = [
                threading.Thread(target=run, args=(n,), name=f"tenant-{n}")
                for n in walled
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            if errors:
                raise next(iter(errors.values()))
            for name in walled:
                fleet.tenants[name] = TenantResult(
                    self.sessions[name].tenant,
                    self.sessions[name].placement,
                    results[name],
                )
        return fleet

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for session in self.sessions.values():
            session.close()
        self.transport.close_tenants()

    def __enter__(self) -> "FleetServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
