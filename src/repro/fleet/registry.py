"""Named models for fleet serving: engines, programs and warm tables.

A fleet serves several models at once; the registry is the one place
they are prepared.  Registering a model builds its
:class:`~repro.nn.executor.Engine` (weights initialised or supplied),
prewarms the shared vectorized segment table — so every later planning
or re-planning call for that model, including churn-time re-placements,
hits the warm cache — and caches each compiled
:class:`~repro.runtime.program.PlanProgram` keyed by ``(model, plan)``
so tenants sharing a placement share the compilation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.core.plan import PipelinePlan
from repro.cost.flops import CostOptions, DEFAULT_OPTIONS
from repro.cost.tables import get_segment_table
from repro.models.graph import Model
from repro.nn.executor import Engine
from repro.nn.weights import Weights
from repro.runtime.program import PlanProgram, compile_plan

__all__ = ["ModelEntry", "ModelRegistry"]


@dataclass(frozen=True)
class ModelEntry:
    """One registered model: its graph, its engine, its cost options."""

    name: str
    model: Model
    engine: Engine
    options: CostOptions

    @property
    def weights(self) -> Weights:
        return self.engine.weights


class ModelRegistry:
    """Named models with prebuilt engines and warm cost tables."""

    def __init__(self, options: CostOptions = DEFAULT_OPTIONS) -> None:
        self.options = options
        self._entries: "Dict[str, ModelEntry]" = {}
        self._programs: "Dict[Tuple[str, PipelinePlan], PlanProgram]" = {}

    def register(
        self,
        name: str,
        model: Model,
        weights: Optional[Weights] = None,
        seed: int = 0,
    ) -> ModelEntry:
        """Register ``model`` under ``name`` (idempotent per name).

        Builds the engine and prewarms the model's segment cost table;
        re-registering an existing name must supply the same model.
        """
        existing = self._entries.get(name)
        if existing is not None:
            if existing.model is not model:
                raise ValueError(f"model name {name!r} is already registered")
            return existing
        engine = Engine(model, weights, seed=seed)
        get_segment_table(model, self.options)
        entry = ModelEntry(name, model, engine, self.options)
        self._entries[name] = entry
        return entry

    def get(self, name: str) -> ModelEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(
                f"model {name!r} is not registered "
                f"(have: {sorted(self._entries)})"
            ) from None

    def compile(self, name: str, plan: PipelinePlan) -> PlanProgram:
        """The compiled program for ``plan`` on model ``name`` (cached)."""
        entry = self.get(name)
        key = (name, plan)
        try:
            cached = self._programs.get(key)
        except TypeError:  # unhashable plan member: compile uncached
            return compile_plan(entry.model, plan)
        if cached is None:
            cached = compile_plan(entry.model, plan)
            self._programs[key] = cached
        return cached

    def names(self) -> "Tuple[str, ...]":
        return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> "Iterator[ModelEntry]":
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)
