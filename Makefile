.PHONY: install test bench report examples all

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

report:
	python -m repro report --out report.md

examples:
	python examples/quickstart.py
	python examples/smart_home.py
	python examples/heterogeneous_cluster.py
	python examples/distributed_inference.py
	python examples/deployment.py

all: install test bench
