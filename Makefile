PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
export PYTHONPATH

.PHONY: install test test-fast test-slow bench bench-json bench-serve bench-batch bench-transport bench-fleet bench-sim bench-exact exact-smoke trace-smoke fault-smoke fleet-smoke sim-smoke report examples all

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	python -m pytest -x -q tests/

test-fast:
	python -m pytest -x -q -m "not slow" tests/

test-slow:
	python -m pytest -x -q -m slow tests/

bench:
	python -m pytest benchmarks/ --benchmark-only -s

bench-json:
	python -m repro.bench.engine --out BENCH_engine.json
	python -m repro.bench.planner --out BENCH_planner.json
	python -m repro.bench.serve --out BENCH_serve.json
	python -m repro.bench.batch --out BENCH_batch.json
	python -m repro.bench.fleet --out BENCH_fleet.json
	python -m repro.bench.sim --out BENCH_sim.json
	python -m repro.bench.exact --out BENCH_exact.json

bench-serve:
	python -m repro.bench.serve --out BENCH_serve.json

bench-batch:
	python -m repro.bench.batch --out BENCH_batch.json

bench-transport:
	python -m repro.bench.transport --out BENCH_transport.json

bench-fleet:
	python -m repro.bench.fleet --out BENCH_fleet.json

bench-sim:
	python -m repro.bench.sim --out BENCH_sim.json

bench-exact:
	python -m repro.bench.exact --out BENCH_exact.json

exact-smoke:
	python -m repro.bench.exact --quick --out /tmp/BENCH_exact_smoke.json
	python -m repro.bench.exact --check BENCH_exact.json --quick

trace-smoke:
	python -m repro.bench.trace_smoke --hw 64 --frames 2 --devices 4

fault-smoke:
	python -m repro.bench.fault_smoke --frames 4 --devices 4

fleet-smoke:
	python -m repro.bench.fleet --quick --out /tmp/BENCH_fleet_smoke.json

sim-smoke:
	python -m repro.bench.sim --quick --out /tmp/BENCH_sim_smoke.json

report:
	python -m repro report --out report.md

examples:
	python examples/quickstart.py
	python examples/smart_home.py
	python examples/heterogeneous_cluster.py
	python examples/distributed_inference.py
	python examples/deployment.py

all: install test bench
